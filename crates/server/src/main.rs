//! `lcl-serve` — serve the LCL classification engine over TCP or stdio.
//!
//! ```text
//! lcl-serve --addr 127.0.0.1:7171            # NDJSON over TCP
//! echo '{"v":1,"id":1,"kind":"health"}' | lcl-serve --stdio
//! lcl-serve --smoke                          # self-check: serve + round-trip
//! ```

use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::RequestEnvelope;
use lcl_paths::{problems, Engine};
use lcl_server::{
    serve_stdio, validate_exposition, AdmissionConfig, Backend, Client, MetricsListener, Server,
    Service, MAX_FRAME_BYTES,
};
use std::io::{stdin, stdout, Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// The smallest accepted `--max-chunk-bytes`; below this the chunk framing
/// overhead dominates the payload (the service clamps to the same floor).
const MIN_CHUNK_BYTES: usize = 1024;

const USAGE: &str = "\
lcl-serve: serve the LCL classification engine over NDJSON

USAGE:
    lcl-serve --addr HOST:PORT [OPTIONS]   serve over TCP (foreground)
    lcl-serve --stdio [OPTIONS]            serve stdin/stdout until EOF
    lcl-serve --smoke [OPTIONS]            start on a loopback port, drive one
                                           classify and one health round-trip
                                           through the client, then exit

OPTIONS:
    --workers N           persistent pool workers (default: available cores)
    --cache-capacity N    memo cache bound (default: 4096)
    --cache-shards N      memo cache shard count, rounded up to a power of
                          two and capped so every shard owns at least one
                          slot (default: next power of two of the worker
                          count, so concurrent workers rarely share a
                          shard lock)
    --cache-weight-bytes N
                          approximate byte budget for resident memo-cache
                          entries, priced per entry by result size; the
                          entry-count bound still applies (default:
                          unbounded — count-bound only)
    --max-chunk-bytes N   ceiling on one serialized solve_stream chunk
                          frame; clamped to 1024..=1048576
                          (default: 262144)
    --max-inflight N      per-connection pipelined request window for TCP
                          connections (default: 32; 1 = lock-step)
    --max-conns N         cap on simultaneously served TCP connections;
                          the excess is closed at accept (default: unbounded)
    --backend NAME        connection backend: `reactor` (one epoll event
                          loop for all connections; Linux only, the default
                          there) or `threads` (reader+writer thread pair per
                          connection; portable). The LCL_SERVER_BACKEND
                          environment variable sets the default.
    --metrics-addr HOST:PORT
                          also serve a pull-style plaintext metrics
                          exposition over HTTP at /metrics (Prometheus text
                          format; port 0 picks an ephemeral port). The same
                          document is always available in-protocol via the
                          `metrics` request kind.
    --trace-slow-micros N
                          emit one structured NDJSON line to stderr for
                          every request whose end-to-end latency reaches N
                          microseconds (per-stage breakdown, cache hit/miss,
                          problem hash; default: disabled)
    --shed-queue-depth N  shed compute requests (structured `overloaded`
                          reply with a retry hint, no pool slot taken) while
                          the worker pool backlog is at least N jobs
                          (default: disabled)
    --shed-p99-micros N   shed compute requests while the request kind's
                          p99 latency exceeds N microseconds
                          (default: disabled)
    --quota-rps N         per-client token-bucket quota: sustained requests
                          per second per peer IP; rejected frames get the
                          same `overloaded` reply (default: disabled)
    --quota-burst N       per-client burst allowance on top of --quota-rps
                          (default: the --quota-rps value)
    --cache-snapshot PATH persist the warm memo cache: restored (checksum-
                          verified, never fatal) at startup, written on
                          graceful shutdown and on the `snapshot` request
                          kind (default: disabled)
    --help                print this help
";

#[derive(Debug, Default)]
struct Options {
    addr: Option<String>,
    stdio: bool,
    smoke: bool,
    workers: Option<usize>,
    cache_capacity: Option<usize>,
    cache_shards: Option<usize>,
    cache_weight_bytes: Option<u64>,
    max_chunk_bytes: Option<usize>,
    max_inflight: Option<usize>,
    max_conns: Option<usize>,
    backend: Option<Backend>,
    metrics_addr: Option<String>,
    trace_slow_micros: Option<u64>,
    shed_queue_depth: Option<usize>,
    shed_p99_micros: Option<u64>,
    quota_rps: Option<u64>,
    quota_burst: Option<u64>,
    cache_snapshot: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let value = iter.next().ok_or("--addr requires HOST:PORT")?;
                options.addr = Some(value.clone());
            }
            "--stdio" => options.stdio = true,
            "--smoke" => options.smoke = true,
            "--workers" => {
                let value = iter.next().ok_or("--workers requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --workers value `{value}`"))?;
                if parsed == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                options.workers = Some(parsed);
            }
            "--cache-capacity" => {
                let value = iter.next().ok_or("--cache-capacity requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-capacity value `{value}`"))?;
                if parsed == 0 {
                    return Err("--cache-capacity must be at least 1".to_string());
                }
                options.cache_capacity = Some(parsed);
            }
            "--cache-shards" => {
                let value = iter.next().ok_or("--cache-shards requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-shards value `{value}`"))?;
                if parsed == 0 {
                    return Err("--cache-shards must be at least 1".to_string());
                }
                options.cache_shards = Some(parsed);
            }
            "--cache-weight-bytes" => {
                let value = iter
                    .next()
                    .ok_or("--cache-weight-bytes requires a byte count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-weight-bytes value `{value}`"))?;
                if parsed == 0 {
                    return Err("--cache-weight-bytes must be at least 1".to_string());
                }
                options.cache_weight_bytes = Some(parsed);
            }
            "--max-chunk-bytes" => {
                let value = iter
                    .next()
                    .ok_or("--max-chunk-bytes requires a byte count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --max-chunk-bytes value `{value}`"))?;
                if !(MIN_CHUNK_BYTES..=MAX_FRAME_BYTES).contains(&parsed) {
                    return Err(format!(
                        "--max-chunk-bytes must be in {MIN_CHUNK_BYTES}..={MAX_FRAME_BYTES}, \
                         got {parsed}"
                    ));
                }
                options.max_chunk_bytes = Some(parsed);
            }
            "--max-inflight" => {
                let value = iter.next().ok_or("--max-inflight requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --max-inflight value `{value}`"))?;
                if parsed == 0 {
                    return Err("--max-inflight must be at least 1".to_string());
                }
                options.max_inflight = Some(parsed);
            }
            "--max-conns" => {
                let value = iter.next().ok_or("--max-conns requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --max-conns value `{value}`"))?;
                if parsed == 0 {
                    return Err("--max-conns must be at least 1".to_string());
                }
                options.max_conns = Some(parsed);
            }
            "--backend" => {
                let value = iter
                    .next()
                    .ok_or("--backend requires `reactor` or `threads`")?;
                let backend = Backend::from_name(value).ok_or_else(|| {
                    format!("unknown backend `{value}` (expected reactor or threads)")
                })?;
                if !backend.available() {
                    return Err(format!(
                        "backend `{backend}` is not available on this platform"
                    ));
                }
                options.backend = Some(backend);
            }
            "--metrics-addr" => {
                let value = iter.next().ok_or("--metrics-addr requires HOST:PORT")?;
                options.metrics_addr = Some(value.clone());
            }
            "--trace-slow-micros" => {
                let value = iter
                    .next()
                    .ok_or("--trace-slow-micros requires a microsecond count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --trace-slow-micros value `{value}`"))?;
                if parsed == 0 {
                    return Err("--trace-slow-micros must be at least 1".to_string());
                }
                options.trace_slow_micros = Some(parsed);
            }
            "--shed-queue-depth" => {
                let value = iter.next().ok_or("--shed-queue-depth requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --shed-queue-depth value `{value}`"))?;
                if parsed == 0 {
                    return Err("--shed-queue-depth must be at least 1".to_string());
                }
                options.shed_queue_depth = Some(parsed);
            }
            "--shed-p99-micros" => {
                let value = iter
                    .next()
                    .ok_or("--shed-p99-micros requires a microsecond count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --shed-p99-micros value `{value}`"))?;
                if parsed == 0 {
                    return Err("--shed-p99-micros must be at least 1".to_string());
                }
                options.shed_p99_micros = Some(parsed);
            }
            "--quota-rps" => {
                let value = iter.next().ok_or("--quota-rps requires a count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --quota-rps value `{value}`"))?;
                if parsed == 0 {
                    return Err("--quota-rps must be at least 1".to_string());
                }
                options.quota_rps = Some(parsed);
            }
            "--quota-burst" => {
                let value = iter.next().ok_or("--quota-burst requires a count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --quota-burst value `{value}`"))?;
                if parsed == 0 {
                    return Err("--quota-burst must be at least 1".to_string());
                }
                options.quota_burst = Some(parsed);
            }
            "--cache-snapshot" => {
                let value = iter.next().ok_or("--cache-snapshot requires a PATH")?;
                if value.is_empty() {
                    return Err("--cache-snapshot requires a non-empty PATH".to_string());
                }
                options.cache_snapshot = Some(PathBuf::from(value));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let modes = usize::from(options.addr.is_some())
        + usize::from(options.stdio)
        + usize::from(options.smoke);
    if modes != 1 {
        return Err("exactly one of --addr, --stdio or --smoke is required".to_string());
    }
    if options.quota_burst.is_some() && options.quota_rps.is_none() {
        return Err("--quota-burst requires --quota-rps".to_string());
    }
    Ok(options)
}

fn build_service(options: &Options) -> Arc<Service> {
    let mut builder = Engine::builder();
    if let Some(workers) = options.workers {
        builder = builder.parallelism(workers);
    }
    if let Some(capacity) = options.cache_capacity {
        builder = builder.cache_capacity(capacity);
    }
    if let Some(shards) = options.cache_shards {
        builder = builder.cache_shards(shards);
    }
    if let Some(weight) = options.cache_weight_bytes {
        builder = builder.cache_weight_capacity(weight);
    }
    let mut service = Service::new(builder.build());
    if let Some(bytes) = options.max_chunk_bytes {
        service = service.with_max_chunk_bytes(bytes);
    }
    service = service.with_admission(AdmissionConfig {
        shed_p99_micros: options.shed_p99_micros.unwrap_or(0),
        shed_queue_depth: options.shed_queue_depth.unwrap_or(0),
        quota_rps: options.quota_rps.unwrap_or(0),
        quota_burst: options.quota_burst.unwrap_or(0),
    });
    if let Some(path) = &options.cache_snapshot {
        service = service.with_cache_snapshot_path(path.clone());
    }
    service
        .trace_sink()
        .set_slow_micros(options.trace_slow_micros);
    Arc::new(service)
}

/// Restores the warm-cache snapshot at startup when `--cache-snapshot` is
/// configured and the file exists. Never fatal: a corrupt, truncated or
/// version-skewed snapshot is logged and ignored — the server starts cold.
fn restore_snapshot_logged(service: &Arc<Service>) {
    match service.restore_cache_snapshot() {
        None => {}
        Some(Ok(summary)) => eprintln!("lcl-serve {summary}"),
        Some(Err(message)) => eprintln!("lcl-serve {message}"),
    }
}

/// Writes the warm-cache snapshot on graceful shutdown when
/// `--cache-snapshot` is configured. A write failure is logged, not fatal —
/// the serve already completed.
fn write_snapshot_logged(service: &Arc<Service>) {
    match service.write_cache_snapshot() {
        None => {}
        Some(Ok(summary)) => eprintln!("lcl-serve {summary}"),
        Some(Err(e)) => eprintln!("lcl-serve cache snapshot write failed: {e}"),
    }
}

/// Binds the `--metrics-addr` HTTP scrape endpoint when requested; the
/// returned listener serves until dropped.
fn bind_metrics(
    service: &Arc<Service>,
    options: &Options,
) -> Result<Option<MetricsListener>, String> {
    match &options.metrics_addr {
        None => Ok(None),
        Some(addr) => {
            let listener = MetricsListener::bind(Arc::clone(service), addr)
                .map_err(|e| format!("bind metrics {addr}: {e}"))?;
            eprintln!("lcl-serve metrics on http://{}/metrics", listener.addr());
            Ok(Some(listener))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let service = build_service(&options);

    let outcome = if options.smoke {
        run_smoke(service, &options)
    } else if options.stdio {
        run_stdio(&service, &options)
    } else {
        run_tcp(
            service,
            options.addr.as_deref().unwrap_or_default(),
            &options,
        )
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Applies the shared TCP options (window, connection cap, backend) to a
/// bound server.
fn configure(mut server: Server, options: &Options) -> Server {
    if let Some(window) = options.max_inflight {
        server = server.max_inflight(window);
    }
    if let Some(cap) = options.max_conns {
        server = server.max_conns(cap);
    }
    if let Some(backend) = options.backend {
        server = server.backend(backend);
    }
    server
}

fn run_tcp(service: Arc<Service>, addr: &str, options: &Options) -> Result<(), String> {
    let _metrics = bind_metrics(&service, options)?;
    restore_snapshot_logged(&service);
    let server =
        Server::bind(Arc::clone(&service), addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let server = configure(server, options);
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    let backend = options
        .backend
        .unwrap_or_else(Backend::from_env_or_platform);
    eprintln!("lcl-serve listening on {bound} ({backend} backend)");
    server.run().map_err(|e| format!("serve {bound}: {e}"))?;
    write_snapshot_logged(&service);
    Ok(())
}

fn run_stdio(service: &Arc<Service>, options: &Options) -> Result<(), String> {
    let _metrics = bind_metrics(service, options)?;
    restore_snapshot_logged(service);
    serve_stdio(service, stdin().lock(), stdout().lock()).map_err(|e| e.to_string())?;
    write_snapshot_logged(service);
    // One summary line on exit; CacheStats and PoolStats do the formatting.
    eprintln!(
        "lcl-serve stdio session done: {}; {}",
        service.engine().cache_stats(),
        service.engine().pool_stats()
    );
    Ok(())
}

/// The CI smoke mode: for **every** backend available on this platform (or
/// just the one `--backend` names), start on an ephemeral loopback port,
/// drive one `classify` round-trip, a pipelined burst and one `health`
/// round-trip through the client helper, verify all three, shut down
/// gracefully. On Linux this exercises the reactor path and the thread
/// fallback in one invocation.
fn run_smoke(service: Arc<Service>, options: &Options) -> Result<(), String> {
    let backends: Vec<Backend> = match options.backend {
        Some(backend) => vec![backend],
        None => [Backend::Reactor, Backend::Threads]
            .into_iter()
            .filter(|b| b.available())
            .collect(),
    };
    for backend in backends {
        smoke_backend(Arc::clone(&service), options, backend)?;
    }
    smoke_admission()?;
    Ok(())
}

/// Admission + persistence smoke: a warm-cache snapshot written over the
/// wire round-trips into a fresh engine, and a tightly quota'd server sheds
/// a flood with structured retryable `overloaded` replies, then recovers.
fn smoke_admission() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("lcl-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("smoke temp dir: {e}"))?;
    let path = dir.join("cache.snapshot");
    let result = (|| -> Result<(), String> {
        // Snapshot leg: warm one entry, write through the `snapshot` kind,
        // restore into a fresh engine and verify the verdict comes from the
        // restored cache.
        let warm = Arc::new(
            Service::new(Engine::builder().parallelism(2).build())
                .with_cache_snapshot_path(path.clone()),
        );
        let handle = Server::bind(Arc::clone(&warm), "127.0.0.1:0")
            .map_err(|e| format!("bind loopback: {e}"))?
            .start()
            .map_err(|e| format!("start snapshot server: {e}"))?;
        let spec = problems::coloring(3).to_spec();
        let snapshot_outcome = (|| -> Result<(), String> {
            let mut client = Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
            let verdict = client
                .classify(&spec)
                .map_err(|e| format!("warm classify: {e}"))?;
            let written = client
                .call("snapshot", JsonValue::object([]))
                .map_err(|e| format!("snapshot request: {e}"))?;
            let entries = written
                .require("entries")
                .and_then(|v| v.as_int())
                .map_err(|e| format!("malformed snapshot payload: {e}"))?;
            if entries != 1 {
                return Err(format!("snapshot wrote {entries} entries, expected 1"));
            }
            let restored = Service::new(Engine::builder().parallelism(2).build())
                .with_cache_snapshot_path(path.clone());
            match restored.restore_cache_snapshot() {
                Some(Ok(_)) => {}
                other => return Err(format!("snapshot restore failed: {other:?}")),
            }
            let hits_before = restored.engine().cache_stats().hits;
            let reply = restored.handle_line(
                &RequestEnvelope::new(1, "classify", spec_payload(&spec)).to_json_string(),
            );
            if !reply.is_ok() {
                return Err("restored engine failed to classify".to_string());
            }
            if restored.engine().cache_stats().hits != hits_before + 1 {
                return Err("restored engine missed the snapshotted entry".to_string());
            }
            let _ = verdict;
            Ok(())
        })();
        handle.shutdown();
        snapshot_outcome?;

        // Overload leg: quota one request/s with burst 2, flood 12 distinct
        // problems down one connection, expect structured sheds and a
        // healthy server afterwards.
        let quota = Arc::new(
            Service::new(Engine::builder().parallelism(2).build()).with_admission(
                AdmissionConfig {
                    quota_rps: 1,
                    quota_burst: 2,
                    ..AdmissionConfig::default()
                },
            ),
        );
        let handle = Server::bind(Arc::clone(&quota), "127.0.0.1:0")
            .map_err(|e| format!("bind loopback: {e}"))?
            .start()
            .map_err(|e| format!("start quota server: {e}"))?;
        let flood_outcome = (|| -> Result<(), String> {
            let mut client = Client::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
            let count = 12usize;
            for i in 0..count {
                let spec = problems::coloring(2 + i).to_spec();
                let line = RequestEnvelope::new(i as i64, "classify", spec_payload(&spec))
                    .to_json_string();
                client
                    .send_frame(&line)
                    .map_err(|e| format!("flood send: {e}"))?;
            }
            let mut shed = 0usize;
            for _ in 0..count {
                let line = client
                    .recv_frame()
                    .map_err(|e| format!("flood recv: {e}"))?;
                let reply = lcl_paths::problem::ResponseEnvelope::from_json_str(&line)
                    .map_err(|e| format!("flood reply parse: {e}"))?;
                if let Err(error) = &reply.result {
                    if error.category != "overloaded" || error.retryable != Some(true) {
                        return Err(format!(
                            "flood produced a non-overloaded error: {} {}",
                            error.category, error.message
                        ));
                    }
                    shed += 1;
                }
            }
            if shed == 0 {
                return Err("flood past the quota shed nothing".to_string());
            }
            // Control kinds stay reachable, and the shed counter is on the
            // exposition — the overloaded server remains observable.
            let exposition = client
                .metrics()
                .map_err(|e| format!("metrics during overload: {e}"))?;
            if !exposition.contains("lcl_shed_total{kind=\"classify\"}") {
                return Err("exposition is missing the shed counter".to_string());
            }
            println!(
                "smoke ok (admission): {shed}/{count} flood frames shed, snapshot round-trip 1 entry"
            );
            Ok(())
        })();
        handle.shutdown();
        flood_outcome
    })();
    std::fs::remove_dir_all(&dir).ok();
    result
}

/// Wraps a problem spec as a `classify` payload.
fn spec_payload(spec: &lcl_paths::problem::ProblemSpec) -> JsonValue {
    JsonValue::object([("problem", spec.to_json())])
}

fn smoke_backend(service: Arc<Service>, options: &Options, backend: Backend) -> Result<(), String> {
    let scrape_service = Arc::clone(&service);
    let server = Server::bind(service, "127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
    // configure() applies any --backend too, but the smoke loop iterates
    // explicitly: pin this round's backend last.
    let server = configure(server, options).backend(backend);
    let handle = server
        .start()
        .map_err(|e| format!("start {backend} server: {e}"))?;
    let addr = handle.addr();

    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let problem = problems::coloring(3);
        let verdict = client
            .classify(&problem.to_spec())
            .map_err(|e| format!("[{backend}] classify round-trip: {e}"))?;
        if verdict.complexity.wire_name() != "log-star" {
            return Err(format!(
                "[{backend}] unexpected verdict for 3-coloring: {}",
                verdict.complexity
            ));
        }
        // A pipelined burst over the same connection: several requests in
        // flight at once, replies required in request order.
        let specs: Vec<_> = (2..=5).map(|k| problems::coloring(k).to_spec()).collect();
        let outcomes = client
            .classify_many_pipelined(&specs, 0)
            .map_err(|e| format!("[{backend}] pipelined burst: {e}"))?;
        if outcomes.len() != specs.len() || outcomes.iter().any(Result::is_err) {
            return Err(format!("[{backend}] pipelined burst returned {outcomes:?}"));
        }
        // The generator round-trip: the served spec must hash identically
        // to a local regeneration from the same seed.
        let config = lcl_paths::gen::GenConfig::new(11).family(lcl_paths::gen::Family::Solvable);
        let (generated, hash) = client
            .generate(&config)
            .map_err(|e| format!("[{backend}] generate round-trip: {e}"))?;
        let local = lcl_paths::gen::generate(&config)
            .map_err(|e| format!("[{backend}] local generation: {e}"))?;
        if hash != format!("{:016x}", local.canonical_hash()) {
            return Err(format!("[{backend}] generate hash mismatch: served {hash}"));
        }
        let _ = generated;
        // A streamed solve: chunked labeling of a cycle, verified by the
        // client's ordering checks plus a local color-validity scan. The
        // LogStar algorithm costs ~0.5 ms/node, so the smoke stays short;
        // the solve_stream bench covers the million-node case.
        let instance = lcl_paths::problem::StreamInstanceSpec {
            topology: lcl_paths::problem::Topology::Cycle,
            length: 2_000,
            inputs: lcl_paths::problem::StreamInputs::Uniform { label: 0 },
        };
        let mut labels: Vec<u16> = Vec::new();
        let summary = client
            .solve_stream(&problem.to_spec(), &instance, |_, outputs| {
                labels.extend_from_slice(outputs);
            })
            .map_err(|e| format!("[{backend}] solve_stream round-trip: {e}"))?;
        if summary.nodes != instance.length || labels.len() as u64 != instance.length {
            return Err(format!(
                "[{backend}] solve_stream delivered {} of {} labels",
                labels.len(),
                instance.length
            ));
        }
        if (0..labels.len()).any(|i| labels[i] == labels[(i + 1) % labels.len()]) {
            return Err(format!("[{backend}] solve_stream labeling is invalid"));
        }
        let health = client
            .health()
            .map_err(|e| format!("[{backend}] health round-trip: {e}"))?;
        let status = health
            .require("status")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("[{backend}] malformed health payload: {e}"))?;
        if status != "ok" {
            return Err(format!("[{backend}] unexpected health status `{status}`"));
        }
        // The observability surface, both ways in: the in-protocol
        // `metrics` kind and an HTTP scrape of an ephemeral listener must
        // each produce a well-formed exposition that reflects this run.
        let exposition = client
            .metrics()
            .map_err(|e| format!("[{backend}] metrics round-trip: {e}"))?;
        validate_exposition(&exposition)
            .map_err(|e| format!("[{backend}] malformed protocol exposition: {e}"))?;
        if !exposition.contains("lcl_requests_total{kind=\"classify\"}") {
            return Err(format!(
                "[{backend}] exposition is missing the classify counter"
            ));
        }
        let scraped = {
            let mut listener = MetricsListener::bind(Arc::clone(&scrape_service), "127.0.0.1:0")
                .map_err(|e| format!("[{backend}] bind scrape listener: {e}"))?;
            let body = http_get(listener.addr(), "/metrics")
                .map_err(|e| format!("[{backend}] HTTP scrape: {e}"))?;
            listener.shutdown();
            body
        };
        validate_exposition(&scraped)
            .map_err(|e| format!("[{backend}] malformed scraped exposition: {e}"))?;
        println!("smoke ok @ {addr} ({backend} backend): {verdict}");
        Ok(())
    })();
    handle.shutdown();
    result
}

/// A one-shot `GET` against the scrape endpoint, returning the body. The
/// smoke check uses a raw socket deliberately — it validates the listener's
/// actual HTTP framing, not a client library's tolerance of it.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: lcl\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "expected 200, got: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&args)
    }

    #[test]
    fn zero_valued_flags_are_rejected_at_parse_time() {
        for flag in [
            "--workers",
            "--cache-capacity",
            "--cache-shards",
            "--cache-weight-bytes",
            "--max-inflight",
            "--max-conns",
            "--trace-slow-micros",
            "--shed-queue-depth",
            "--shed-p99-micros",
            "--quota-rps",
            "--quota-burst",
        ] {
            let error = parse(&["--stdio", flag, "0"]).expect_err(flag);
            assert!(
                error.contains(flag) && error.contains("at least 1"),
                "{flag}: {error}"
            );
        }
    }

    #[test]
    fn max_chunk_bytes_is_bounded_at_parse_time() {
        // In-range values parse, including both boundaries.
        for ok in ["1024", "262144", "1048576"] {
            let options = parse(&["--stdio", "--max-chunk-bytes", ok]).expect(ok);
            assert_eq!(options.max_chunk_bytes, Some(ok.parse().unwrap()));
        }
        // Out-of-range values are rejected with the range in the message,
        // not silently clamped by the service.
        for bad in ["0", "1023", "1048577", "not-a-number"] {
            let error = parse(&["--stdio", "--max-chunk-bytes", bad]).expect_err(bad);
            assert!(error.contains("--max-chunk-bytes"), "{bad}: {error}");
        }
    }

    #[test]
    fn admission_flags_parse_and_validate() {
        let options = parse(&[
            "--stdio",
            "--shed-queue-depth",
            "64",
            "--shed-p99-micros",
            "5000",
            "--quota-rps",
            "100",
            "--quota-burst",
            "200",
            "--cache-snapshot",
            "/tmp/cache.snap",
        ])
        .expect("full admission flag set parses");
        assert_eq!(options.shed_queue_depth, Some(64));
        assert_eq!(options.shed_p99_micros, Some(5_000));
        assert_eq!(options.quota_rps, Some(100));
        assert_eq!(options.quota_burst, Some(200));
        assert_eq!(
            options.cache_snapshot,
            Some(PathBuf::from("/tmp/cache.snap"))
        );

        // Burst without a sustained rate is meaningless.
        let error = parse(&["--stdio", "--quota-burst", "5"]).expect_err("burst alone");
        assert!(error.contains("--quota-rps"), "{error}");

        // Missing or empty values are rejected.
        assert!(parse(&["--stdio", "--cache-snapshot", ""]).is_err());
        assert!(parse(&["--stdio", "--quota-rps"]).is_err());
    }

    #[test]
    fn exactly_one_mode_is_required() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--stdio", "--smoke"]).is_err());
        assert!(parse(&["--addr", "127.0.0.1:0", "--stdio"]).is_err());
        assert!(parse(&["--stdio"]).is_ok());
    }
}
