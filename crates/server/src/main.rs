//! `lcl-serve` — serve the LCL classification engine over TCP or stdio.
//!
//! ```text
//! lcl-serve --addr 127.0.0.1:7171            # NDJSON over TCP
//! echo '{"v":1,"id":1,"kind":"health"}' | lcl-serve --stdio
//! lcl-serve --smoke                          # self-check: serve + round-trip
//! ```

use lcl_paths::{problems, Engine};
use lcl_server::{
    serve_stdio, validate_exposition, Backend, Client, MetricsListener, Server, Service,
};
use std::io::{stdin, stdout, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
lcl-serve: serve the LCL classification engine over NDJSON

USAGE:
    lcl-serve --addr HOST:PORT [OPTIONS]   serve over TCP (foreground)
    lcl-serve --stdio [OPTIONS]            serve stdin/stdout until EOF
    lcl-serve --smoke [OPTIONS]            start on a loopback port, drive one
                                           classify and one health round-trip
                                           through the client, then exit

OPTIONS:
    --workers N           persistent pool workers (default: available cores)
    --cache-capacity N    memo cache bound (default: 4096)
    --cache-shards N      memo cache shard count, rounded up to a power of
                          two and capped so every shard owns at least one
                          slot (default: next power of two of the worker
                          count, so concurrent workers rarely share a
                          shard lock)
    --cache-weight-bytes N
                          approximate byte budget for resident memo-cache
                          entries, priced per entry by result size; the
                          entry-count bound still applies (default:
                          unbounded — count-bound only)
    --max-chunk-bytes N   ceiling on one serialized solve_stream chunk
                          frame; clamped to 1024..=1048576
                          (default: 262144)
    --max-inflight N      per-connection pipelined request window for TCP
                          connections (default: 32; 1 = lock-step)
    --max-conns N         cap on simultaneously served TCP connections;
                          the excess is closed at accept (default: unbounded)
    --backend NAME        connection backend: `reactor` (one epoll event
                          loop for all connections; Linux only, the default
                          there) or `threads` (reader+writer thread pair per
                          connection; portable). The LCL_SERVER_BACKEND
                          environment variable sets the default.
    --metrics-addr HOST:PORT
                          also serve a pull-style plaintext metrics
                          exposition over HTTP at /metrics (Prometheus text
                          format; port 0 picks an ephemeral port). The same
                          document is always available in-protocol via the
                          `metrics` request kind.
    --trace-slow-micros N
                          emit one structured NDJSON line to stderr for
                          every request whose end-to-end latency reaches N
                          microseconds (per-stage breakdown, cache hit/miss,
                          problem hash; default: disabled)
    --help                print this help
";

#[derive(Default)]
struct Options {
    addr: Option<String>,
    stdio: bool,
    smoke: bool,
    workers: Option<usize>,
    cache_capacity: Option<usize>,
    cache_shards: Option<usize>,
    cache_weight_bytes: Option<u64>,
    max_chunk_bytes: Option<usize>,
    max_inflight: Option<usize>,
    max_conns: Option<usize>,
    backend: Option<Backend>,
    metrics_addr: Option<String>,
    trace_slow_micros: Option<u64>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                let value = iter.next().ok_or("--addr requires HOST:PORT")?;
                options.addr = Some(value.clone());
            }
            "--stdio" => options.stdio = true,
            "--smoke" => options.smoke = true,
            "--workers" => {
                let value = iter.next().ok_or("--workers requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --workers value `{value}`"))?;
                if parsed == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                options.workers = Some(parsed);
            }
            "--cache-capacity" => {
                let value = iter.next().ok_or("--cache-capacity requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-capacity value `{value}`"))?;
                options.cache_capacity = Some(parsed);
            }
            "--cache-shards" => {
                let value = iter.next().ok_or("--cache-shards requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-shards value `{value}`"))?;
                if parsed == 0 {
                    return Err("--cache-shards must be at least 1".to_string());
                }
                options.cache_shards = Some(parsed);
            }
            "--cache-weight-bytes" => {
                let value = iter
                    .next()
                    .ok_or("--cache-weight-bytes requires a byte count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --cache-weight-bytes value `{value}`"))?;
                if parsed == 0 {
                    return Err("--cache-weight-bytes must be at least 1".to_string());
                }
                options.cache_weight_bytes = Some(parsed);
            }
            "--max-chunk-bytes" => {
                let value = iter
                    .next()
                    .ok_or("--max-chunk-bytes requires a byte count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --max-chunk-bytes value `{value}`"))?;
                if parsed == 0 {
                    return Err("--max-chunk-bytes must be at least 1".to_string());
                }
                options.max_chunk_bytes = Some(parsed);
            }
            "--max-inflight" => {
                let value = iter.next().ok_or("--max-inflight requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --max-inflight value `{value}`"))?;
                if parsed == 0 {
                    return Err("--max-inflight must be at least 1".to_string());
                }
                options.max_inflight = Some(parsed);
            }
            "--max-conns" => {
                let value = iter.next().ok_or("--max-conns requires a count")?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --max-conns value `{value}`"))?;
                if parsed == 0 {
                    return Err("--max-conns must be at least 1".to_string());
                }
                options.max_conns = Some(parsed);
            }
            "--backend" => {
                let value = iter
                    .next()
                    .ok_or("--backend requires `reactor` or `threads`")?;
                let backend = Backend::from_name(value).ok_or_else(|| {
                    format!("unknown backend `{value}` (expected reactor or threads)")
                })?;
                if !backend.available() {
                    return Err(format!(
                        "backend `{backend}` is not available on this platform"
                    ));
                }
                options.backend = Some(backend);
            }
            "--metrics-addr" => {
                let value = iter.next().ok_or("--metrics-addr requires HOST:PORT")?;
                options.metrics_addr = Some(value.clone());
            }
            "--trace-slow-micros" => {
                let value = iter
                    .next()
                    .ok_or("--trace-slow-micros requires a microsecond count")?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --trace-slow-micros value `{value}`"))?;
                if parsed == 0 {
                    return Err("--trace-slow-micros must be at least 1".to_string());
                }
                options.trace_slow_micros = Some(parsed);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let modes = usize::from(options.addr.is_some())
        + usize::from(options.stdio)
        + usize::from(options.smoke);
    if modes != 1 {
        return Err("exactly one of --addr, --stdio or --smoke is required".to_string());
    }
    Ok(options)
}

fn build_service(options: &Options) -> Arc<Service> {
    let mut builder = Engine::builder();
    if let Some(workers) = options.workers {
        builder = builder.parallelism(workers);
    }
    if let Some(capacity) = options.cache_capacity {
        builder = builder.cache_capacity(capacity);
    }
    if let Some(shards) = options.cache_shards {
        builder = builder.cache_shards(shards);
    }
    if let Some(weight) = options.cache_weight_bytes {
        builder = builder.cache_weight_capacity(weight);
    }
    let mut service = Service::new(builder.build());
    if let Some(bytes) = options.max_chunk_bytes {
        service = service.with_max_chunk_bytes(bytes);
    }
    service
        .trace_sink()
        .set_slow_micros(options.trace_slow_micros);
    Arc::new(service)
}

/// Binds the `--metrics-addr` HTTP scrape endpoint when requested; the
/// returned listener serves until dropped.
fn bind_metrics(
    service: &Arc<Service>,
    options: &Options,
) -> Result<Option<MetricsListener>, String> {
    match &options.metrics_addr {
        None => Ok(None),
        Some(addr) => {
            let listener = MetricsListener::bind(Arc::clone(service), addr)
                .map_err(|e| format!("bind metrics {addr}: {e}"))?;
            eprintln!("lcl-serve metrics on http://{}/metrics", listener.addr());
            Ok(Some(listener))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let service = build_service(&options);

    let outcome = if options.smoke {
        run_smoke(service, &options)
    } else if options.stdio {
        run_stdio(&service, &options)
    } else {
        run_tcp(
            service,
            options.addr.as_deref().unwrap_or_default(),
            &options,
        )
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Applies the shared TCP options (window, connection cap, backend) to a
/// bound server.
fn configure(mut server: Server, options: &Options) -> Server {
    if let Some(window) = options.max_inflight {
        server = server.max_inflight(window);
    }
    if let Some(cap) = options.max_conns {
        server = server.max_conns(cap);
    }
    if let Some(backend) = options.backend {
        server = server.backend(backend);
    }
    server
}

fn run_tcp(service: Arc<Service>, addr: &str, options: &Options) -> Result<(), String> {
    let _metrics = bind_metrics(&service, options)?;
    let server = Server::bind(service, addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let server = configure(server, options);
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    let backend = options
        .backend
        .unwrap_or_else(Backend::from_env_or_platform);
    eprintln!("lcl-serve listening on {bound} ({backend} backend)");
    server.run().map_err(|e| format!("serve {bound}: {e}"))
}

fn run_stdio(service: &Arc<Service>, options: &Options) -> Result<(), String> {
    let _metrics = bind_metrics(service, options)?;
    serve_stdio(service, stdin().lock(), stdout().lock()).map_err(|e| e.to_string())?;
    // One summary line on exit; CacheStats and PoolStats do the formatting.
    eprintln!(
        "lcl-serve stdio session done: {}; {}",
        service.engine().cache_stats(),
        service.engine().pool_stats()
    );
    Ok(())
}

/// The CI smoke mode: for **every** backend available on this platform (or
/// just the one `--backend` names), start on an ephemeral loopback port,
/// drive one `classify` round-trip, a pipelined burst and one `health`
/// round-trip through the client helper, verify all three, shut down
/// gracefully. On Linux this exercises the reactor path and the thread
/// fallback in one invocation.
fn run_smoke(service: Arc<Service>, options: &Options) -> Result<(), String> {
    let backends: Vec<Backend> = match options.backend {
        Some(backend) => vec![backend],
        None => [Backend::Reactor, Backend::Threads]
            .into_iter()
            .filter(|b| b.available())
            .collect(),
    };
    for backend in backends {
        smoke_backend(Arc::clone(&service), options, backend)?;
    }
    Ok(())
}

fn smoke_backend(service: Arc<Service>, options: &Options, backend: Backend) -> Result<(), String> {
    let scrape_service = Arc::clone(&service);
    let server = Server::bind(service, "127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
    // configure() applies any --backend too, but the smoke loop iterates
    // explicitly: pin this round's backend last.
    let server = configure(server, options).backend(backend);
    let handle = server
        .start()
        .map_err(|e| format!("start {backend} server: {e}"))?;
    let addr = handle.addr();

    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let problem = problems::coloring(3);
        let verdict = client
            .classify(&problem.to_spec())
            .map_err(|e| format!("[{backend}] classify round-trip: {e}"))?;
        if verdict.complexity.wire_name() != "log-star" {
            return Err(format!(
                "[{backend}] unexpected verdict for 3-coloring: {}",
                verdict.complexity
            ));
        }
        // A pipelined burst over the same connection: several requests in
        // flight at once, replies required in request order.
        let specs: Vec<_> = (2..=5).map(|k| problems::coloring(k).to_spec()).collect();
        let outcomes = client
            .classify_many_pipelined(&specs, 0)
            .map_err(|e| format!("[{backend}] pipelined burst: {e}"))?;
        if outcomes.len() != specs.len() || outcomes.iter().any(Result::is_err) {
            return Err(format!("[{backend}] pipelined burst returned {outcomes:?}"));
        }
        // The generator round-trip: the served spec must hash identically
        // to a local regeneration from the same seed.
        let config = lcl_paths::gen::GenConfig::new(11).family(lcl_paths::gen::Family::Solvable);
        let (generated, hash) = client
            .generate(&config)
            .map_err(|e| format!("[{backend}] generate round-trip: {e}"))?;
        let local = lcl_paths::gen::generate(&config)
            .map_err(|e| format!("[{backend}] local generation: {e}"))?;
        if hash != format!("{:016x}", local.canonical_hash()) {
            return Err(format!("[{backend}] generate hash mismatch: served {hash}"));
        }
        let _ = generated;
        // A streamed solve: chunked labeling of a cycle, verified by the
        // client's ordering checks plus a local color-validity scan. The
        // LogStar algorithm costs ~0.5 ms/node, so the smoke stays short;
        // the solve_stream bench covers the million-node case.
        let instance = lcl_paths::problem::StreamInstanceSpec {
            topology: lcl_paths::problem::Topology::Cycle,
            length: 2_000,
            inputs: lcl_paths::problem::StreamInputs::Uniform { label: 0 },
        };
        let mut labels: Vec<u16> = Vec::new();
        let summary = client
            .solve_stream(&problem.to_spec(), &instance, |_, outputs| {
                labels.extend_from_slice(outputs);
            })
            .map_err(|e| format!("[{backend}] solve_stream round-trip: {e}"))?;
        if summary.nodes != instance.length || labels.len() as u64 != instance.length {
            return Err(format!(
                "[{backend}] solve_stream delivered {} of {} labels",
                labels.len(),
                instance.length
            ));
        }
        if (0..labels.len()).any(|i| labels[i] == labels[(i + 1) % labels.len()]) {
            return Err(format!("[{backend}] solve_stream labeling is invalid"));
        }
        let health = client
            .health()
            .map_err(|e| format!("[{backend}] health round-trip: {e}"))?;
        let status = health
            .require("status")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| format!("[{backend}] malformed health payload: {e}"))?;
        if status != "ok" {
            return Err(format!("[{backend}] unexpected health status `{status}`"));
        }
        // The observability surface, both ways in: the in-protocol
        // `metrics` kind and an HTTP scrape of an ephemeral listener must
        // each produce a well-formed exposition that reflects this run.
        let exposition = client
            .metrics()
            .map_err(|e| format!("[{backend}] metrics round-trip: {e}"))?;
        validate_exposition(&exposition)
            .map_err(|e| format!("[{backend}] malformed protocol exposition: {e}"))?;
        if !exposition.contains("lcl_requests_total{kind=\"classify\"}") {
            return Err(format!(
                "[{backend}] exposition is missing the classify counter"
            ));
        }
        let scraped = {
            let mut listener = MetricsListener::bind(Arc::clone(&scrape_service), "127.0.0.1:0")
                .map_err(|e| format!("[{backend}] bind scrape listener: {e}"))?;
            let body = http_get(listener.addr(), "/metrics")
                .map_err(|e| format!("[{backend}] HTTP scrape: {e}"))?;
            listener.shutdown();
            body
        };
        validate_exposition(&scraped)
            .map_err(|e| format!("[{backend}] malformed scraped exposition: {e}"))?;
        println!("smoke ok @ {addr} ({backend} backend): {verdict}");
        Ok(())
    })();
    handle.shutdown();
    result
}

/// A one-shot `GET` against the scrape endpoint, returning the body. The
/// smoke check uses a raw socket deliberately — it validates the listener's
/// actual HTTP framing, not a client library's tolerance of it.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: lcl\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "expected 200, got: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    Ok(body.to_string())
}
