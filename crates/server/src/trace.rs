//! Per-request stage tracing: where one request's latency actually went.
//!
//! Every dispatched frame (when detailed metrics are on) carries an
//! [`Trace`] handle from frame read to reply write. Each pipeline stage
//! stamps a monotonic offset on it — queue wait, parse, compute, serialize,
//! write — and when the last stage finishes (or the handle is dropped
//! because the connection died), the trace collapses into a
//! [`TraceRecord`] and lands in the [`TraceSink`]:
//!
//! * a fixed-size lock-free ring of the most recent records
//!   ([`TraceSink::recent`]), always on, for post-hoc "what just
//!   happened" inspection;
//! * optionally (`--trace-slow-micros`), one structured NDJSON line on
//!   stderr per request whose end-to-end latency crossed the threshold —
//!   the line carries the request id, kind, problem hash, cache hit/miss
//!   and per-stage microseconds, so a slow request is attributable from
//!   the log alone.
//!
//! All stamping is relaxed atomics on a shared `Arc`; the hot path never
//! locks, never allocates beyond the one `Arc` per request, and a stage
//! that never runs (an invalid frame has no compute) simply reports 0.

use crate::service::RequestKind;
use lcl_paths::classifier::obs::{TraceKind, TraceRecord, TraceRing};
use lcl_paths::problem::json::JsonValue;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many finished request traces the sink's ring retains.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 256;

/// The stable index of a request kind inside a [`TraceRecord`]
/// (`TraceRecord::kind`): its position in [`RequestKind::ALL`], with
/// [`TraceRecord::KIND_INVALID`] for frames that never resolved to a kind.
pub fn kind_index(kind: Option<RequestKind>) -> TraceKind {
    match kind {
        Some(kind) => RequestKind::ALL
            .iter()
            .position(|&k| k == kind)
            .map(|at| at as TraceKind)
            .unwrap_or(TraceRecord::KIND_INVALID),
        None => TraceRecord::KIND_INVALID,
    }
}

/// The wire name of a [`TraceRecord::kind`] index (`invalid` for
/// [`TraceRecord::KIND_INVALID`] and anything out of range).
pub fn kind_wire_name(index: TraceKind) -> &'static str {
    RequestKind::ALL
        .get(index as usize)
        .map(|k| k.wire_name())
        .unwrap_or("invalid")
}

/// Serializes one finished trace as the slow-request NDJSON log line:
/// a single-line JSON object with sorted keys, `"trace":"slow"` as the
/// discriminator, and one `*_micros` field per stage. `id`,
/// `problem_hash` (16 hex digits, same encoding as verdicts) and
/// `cache_hit` appear only when known.
pub fn slow_trace_line(record: &TraceRecord) -> String {
    let mut fields = vec![
        ("trace", JsonValue::Str("slow".to_string())),
        (
            "kind",
            JsonValue::Str(kind_wire_name(record.kind).to_string()),
        ),
        ("ok", JsonValue::Bool(record.ok)),
        ("queue_micros", JsonValue::Int(record.queue_micros as i64)),
        ("parse_micros", JsonValue::Int(record.parse_micros as i64)),
        (
            "compute_micros",
            JsonValue::Int(record.compute_micros as i64),
        ),
        (
            "serialize_micros",
            JsonValue::Int(record.serialize_micros as i64),
        ),
        ("write_micros", JsonValue::Int(record.write_micros as i64)),
        ("total_micros", JsonValue::Int(record.total_micros as i64)),
    ];
    if let Some(id) = record.id {
        fields.push(("id", JsonValue::Int(id)));
    }
    if let Some(hash) = record.problem_hash {
        fields.push(("problem_hash", JsonValue::Str(format!("{hash:016x}"))));
    }
    if let Some(hit) = record.cache_hit {
        fields.push(("cache_hit", JsonValue::Bool(hit)));
    }
    JsonValue::object(fields).to_json_string()
}

/// Where finished request traces go: the recent-trace ring, plus the
/// optional slow-request log line. One sink per [`Service`], shared by
/// every in-flight request's stage trace.
///
/// [`Service`]: crate::Service
pub struct TraceSink {
    ring: TraceRing,
    /// End-to-end latency threshold for the slow-request log line;
    /// 0 = disabled.
    slow_micros: AtomicU64,
    /// Receives each slow-request NDJSON line; stderr by default,
    /// swappable for tests.
    emit: Box<dyn Fn(&str) + Send + Sync>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.ring.capacity())
            .field("pushed", &self.ring.pushed())
            .field("slow_micros", &self.slow_micros.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new(DEFAULT_TRACE_RING_CAPACITY)
    }
}

impl TraceSink {
    /// A sink retaining the `capacity` most recent traces, with the slow
    /// log disabled and stderr as its line emitter.
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink::with_emitter(capacity, |line| eprintln!("{line}"))
    }

    /// [`TraceSink::new`] with a custom slow-line emitter (tests capture
    /// lines instead of printing them).
    pub fn with_emitter(capacity: usize, emit: impl Fn(&str) + Send + Sync + 'static) -> TraceSink {
        TraceSink {
            ring: TraceRing::new(capacity),
            slow_micros: AtomicU64::new(0),
            emit: Box::new(emit),
        }
    }

    /// Sets the slow-request threshold: a finished request whose end-to-end
    /// latency is at least `micros` microseconds emits one NDJSON line
    /// ([`slow_trace_line`]). `None` (or 0) disables the log; the ring is
    /// unaffected either way.
    pub fn set_slow_micros(&self, micros: Option<u64>) {
        self.slow_micros
            .store(micros.unwrap_or(0), Ordering::Relaxed);
    }

    /// The current slow-request threshold (`None` = log disabled).
    pub fn slow_micros(&self) -> Option<u64> {
        match self.slow_micros.load(Ordering::Relaxed) {
            0 => None,
            micros => Some(micros),
        }
    }

    /// The retained finished traces, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        self.ring.recent()
    }

    /// Traces finished since the sink was created (≥ retained ones).
    pub fn finished(&self) -> u64 {
        self.ring.pushed()
    }

    /// Accepts one finished trace: into the ring, and onto the slow log
    /// when over the threshold.
    fn accept(&self, record: &TraceRecord) {
        self.ring.push(record);
        let slow = self.slow_micros.load(Ordering::Relaxed);
        if slow > 0 && record.total_micros >= slow {
            (self.emit)(&slow_trace_line(record));
        }
    }
}

/// Stage-offset atomics use 0 for "never stamped"; a stamped offset is
/// stored `+1` so a genuinely zero-microsecond offset stays distinguishable.
fn stamp(slot: &AtomicU64, started: Instant) {
    let offset = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX - 1);
    slot.store(offset.saturating_add(1), Ordering::Relaxed);
}

/// The live trace of one in-flight request, shared (as an `Arc`) between
/// the dispatching thread, the pool worker executing the request and the
/// connection writer. Every mutator is a relaxed atomic store, so the
/// stages can stamp from different threads without coordination.
///
/// The trace finishes — collapses into a [`TraceRecord`] and reaches its
/// sink — exactly once: at [`Trace::finish`] (the write stage, normally),
/// or on drop if no stage ever finished it (the connection died before
/// the reply was written; the partial stages still land in the ring).
#[derive(Debug)]
pub(crate) struct Trace {
    sink: Arc<TraceSink>,
    started: Instant,
    id: AtomicI64,
    has_id: AtomicBool,
    kind: AtomicU8,
    ok: AtomicBool,
    problem_hash: AtomicU64,
    has_hash: AtomicBool,
    /// 0 = unknown, 1 = miss, 2 = hit.
    cache_hit: AtomicU8,
    /// Offsets (micros since `started`, stored `+1`; 0 = never stamped) at
    /// which each stage *ended*.
    queue: AtomicU64,
    parse: AtomicU64,
    compute: AtomicU64,
    serialize: AtomicU64,
    write: AtomicU64,
    done: AtomicBool,
}

impl Trace {
    /// A fresh trace clocked from `started` (the instant the frame was
    /// read), with the kind pre-set to invalid until parse resolves it.
    pub(crate) fn new(sink: Arc<TraceSink>, started: Instant, id: Option<i64>) -> Trace {
        Trace {
            sink,
            started,
            id: AtomicI64::new(id.unwrap_or(0)),
            has_id: AtomicBool::new(id.is_some()),
            kind: AtomicU8::new(TraceRecord::KIND_INVALID),
            ok: AtomicBool::new(false),
            problem_hash: AtomicU64::new(0),
            has_hash: AtomicBool::new(false),
            cache_hit: AtomicU8::new(0),
            queue: AtomicU64::new(0),
            parse: AtomicU64::new(0),
            compute: AtomicU64::new(0),
            serialize: AtomicU64::new(0),
            write: AtomicU64::new(0),
            done: AtomicBool::new(false),
        }
    }

    /// Stamps the end of the queue stage (a pool worker picked the job up).
    pub(crate) fn mark_queue(&self) {
        stamp(&self.queue, self.started);
    }

    /// Stamps the end of the parse stage and the now-known identity.
    pub(crate) fn mark_parsed(&self, kind: Option<RequestKind>, id: Option<i64>) {
        self.kind.store(kind_index(kind), Ordering::Relaxed);
        if let Some(id) = id {
            self.id.store(id, Ordering::Relaxed);
            self.has_id.store(true, Ordering::Relaxed);
        }
        stamp(&self.parse, self.started);
    }

    /// Stamps the end of the compute stage and the outcome.
    pub(crate) fn mark_computed(&self, ok: bool) {
        self.ok.store(ok, Ordering::Relaxed);
        stamp(&self.compute, self.started);
    }

    /// Stamps the end of the serialize stage (the reply bytes exist).
    pub(crate) fn mark_serialized(&self) {
        stamp(&self.serialize, self.started);
    }

    /// Records which problem the request touched and (when known) whether
    /// the memo cache served its classification.
    pub(crate) fn set_problem(&self, canonical_hash: u64, cache_hit: Option<bool>) {
        self.problem_hash.store(canonical_hash, Ordering::Relaxed);
        self.has_hash.store(true, Ordering::Relaxed);
        if let Some(hit) = cache_hit {
            self.cache_hit
                .store(if hit { 2 } else { 1 }, Ordering::Relaxed);
        }
    }

    /// Stamps the end of the write stage (the reply's bytes left for the
    /// socket) and finishes the trace into its sink. Idempotent.
    pub(crate) fn finish_written(&self) {
        // One clock read serves both the write stamp and the total: the
        // write stage ends at the same instant the trace finishes.
        let total = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX - 1);
        self.write.store(total.saturating_add(1), Ordering::Relaxed);
        self.finish_at(total);
    }

    /// Finishes the trace into its sink without a write stamp (front-ends
    /// that cannot observe the write, e.g. lock-step embedding). Idempotent.
    pub(crate) fn finish(&self) {
        self.finish_at(u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX));
    }

    /// [`Trace::finish`] with the end-to-end total already measured.
    fn finish_at(&self, total_micros: u64) {
        if self.done.swap(true, Ordering::AcqRel) {
            return;
        }
        self.sink.accept(&self.record(total_micros));
    }

    /// Collapses the stamped offsets into disjoint per-stage durations: an
    /// unstamped stage inherits its predecessor's offset (duration 0), and
    /// the total is the wall clock from frame read to the finish call.
    fn record(&self, total_micros: u64) -> TraceRecord {
        let offsets = [
            self.queue.load(Ordering::Relaxed),
            self.parse.load(Ordering::Relaxed),
            self.compute.load(Ordering::Relaxed),
            self.serialize.load(Ordering::Relaxed),
            self.write.load(Ordering::Relaxed),
        ];
        let mut durations = [0u64; 5];
        let mut previous = 0u64;
        for (duration, &raw) in durations.iter_mut().zip(offsets.iter()) {
            if raw > 0 {
                let offset = raw - 1;
                *duration = offset.saturating_sub(previous);
                previous = offset;
            }
        }
        TraceRecord {
            id: self
                .has_id
                .load(Ordering::Relaxed)
                .then(|| self.id.load(Ordering::Relaxed)),
            kind: self.kind.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            problem_hash: self
                .has_hash
                .load(Ordering::Relaxed)
                .then(|| self.problem_hash.load(Ordering::Relaxed)),
            cache_hit: match self.cache_hit.load(Ordering::Relaxed) {
                1 => Some(false),
                2 => Some(true),
                _ => None,
            },
            queue_micros: durations[0],
            parse_micros: durations[1],
            compute_micros: durations[2],
            serialize_micros: durations[3],
            write_micros: durations[4],
            total_micros,
        }
    }
}

impl Drop for Trace {
    /// A trace abandoned mid-flight (connection died before its reply was
    /// written) still reaches the ring with whatever stages it stamped.
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn capturing_sink() -> (Arc<TraceSink>, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let captured = Arc::clone(&lines);
        let sink = Arc::new(TraceSink::with_emitter(8, move |line| {
            captured.lock().unwrap().push(line.to_string());
        }));
        (sink, lines)
    }

    #[test]
    fn kind_indices_round_trip_through_wire_names() {
        for &kind in &RequestKind::ALL {
            assert_eq!(kind_wire_name(kind_index(Some(kind))), kind.wire_name());
        }
        assert_eq!(kind_wire_name(kind_index(None)), "invalid");
        assert_eq!(kind_wire_name(TraceRecord::KIND_INVALID), "invalid");
    }

    #[test]
    fn stages_collapse_into_disjoint_durations() {
        let (sink, _) = capturing_sink();
        let started = Instant::now();
        let trace = Trace::new(Arc::clone(&sink), started, None);
        trace.mark_queue();
        trace.mark_parsed(Some(RequestKind::Classify), Some(9));
        trace.set_problem(0xabcd, Some(true));
        trace.mark_computed(true);
        trace.mark_serialized();
        trace.finish_written();
        let records = sink.recent();
        assert_eq!(records.len(), 1);
        let record = &records[0];
        assert_eq!(record.id, Some(9));
        assert_eq!(kind_wire_name(record.kind), "classify");
        assert!(record.ok);
        assert_eq!(record.problem_hash, Some(0xabcd));
        assert_eq!(record.cache_hit, Some(true));
        let stage_sum = record.queue_micros
            + record.parse_micros
            + record.compute_micros
            + record.serialize_micros
            + record.write_micros;
        assert!(
            stage_sum <= record.total_micros + 1,
            "disjoint stages cannot exceed the total: {stage_sum} vs {}",
            record.total_micros
        );
    }

    #[test]
    fn dropping_an_unfinished_trace_still_records_it() {
        let (sink, _) = capturing_sink();
        let trace = Trace::new(Arc::clone(&sink), Instant::now(), Some(3));
        trace.mark_queue();
        drop(trace);
        let records = sink.recent();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, Some(3));
        assert_eq!(records[0].kind, TraceRecord::KIND_INVALID);
        assert_eq!(records[0].write_micros, 0, "write never happened");
    }

    #[test]
    fn finish_is_idempotent() {
        let (sink, _) = capturing_sink();
        let trace = Trace::new(Arc::clone(&sink), Instant::now(), None);
        trace.finish_written();
        trace.finish();
        drop(trace);
        assert_eq!(sink.finished(), 1, "one record despite three finishes");
    }

    #[test]
    fn slow_traces_emit_one_parseable_ndjson_line() {
        let (sink, lines) = capturing_sink();
        sink.set_slow_micros(Some(100));
        assert_eq!(sink.slow_micros(), Some(100));
        let fast = TraceRecord {
            total_micros: 99,
            ..TraceRecord::default()
        };
        sink.accept(&fast);
        assert!(lines.lock().unwrap().is_empty(), "under threshold: no line");
        let slow = TraceRecord {
            id: Some(41),
            kind: kind_index(Some(RequestKind::Solve)),
            ok: true,
            problem_hash: Some(0xfeed),
            cache_hit: Some(false),
            queue_micros: 10,
            parse_micros: 20,
            compute_micros: 200,
            serialize_micros: 5,
            write_micros: 15,
            total_micros: 250,
        };
        sink.accept(&slow);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let parsed = JsonValue::parse(&lines[0]).expect("slow line is valid JSON");
        assert_eq!(parsed.require("trace").unwrap().as_str().unwrap(), "slow");
        assert_eq!(parsed.require("kind").unwrap().as_str().unwrap(), "solve");
        assert_eq!(parsed.require("id").unwrap().as_int().unwrap(), 41);
        assert_eq!(
            parsed.require("problem_hash").unwrap().as_str().unwrap(),
            format!("{:016x}", 0xfeedu64)
        );
        assert!(!parsed.require("cache_hit").unwrap().as_bool().unwrap());
        for (field, expected) in [
            ("queue_micros", 10),
            ("parse_micros", 20),
            ("compute_micros", 200),
            ("serialize_micros", 5),
            ("write_micros", 15),
            ("total_micros", 250),
        ] {
            assert_eq!(
                parsed.require(field).unwrap().as_int().unwrap(),
                expected,
                "{field}"
            );
        }
        // Optional fields are really optional.
        let bare = slow_trace_line(&TraceRecord::default());
        let parsed = JsonValue::parse(&bare).unwrap();
        assert!(parsed.get("id").is_none());
        assert!(parsed.get("problem_hash").is_none());
        assert!(parsed.get("cache_hit").is_none());
        assert_eq!(parsed.require("kind").unwrap().as_str().unwrap(), "invalid");
    }

    #[test]
    fn disabling_the_slow_log_stops_lines() {
        let (sink, lines) = capturing_sink();
        sink.set_slow_micros(Some(1));
        sink.accept(&TraceRecord {
            total_micros: 10,
            ..TraceRecord::default()
        });
        sink.set_slow_micros(None);
        assert_eq!(sink.slow_micros(), None);
        sink.accept(&TraceRecord {
            total_micros: 10,
            ..TraceRecord::default()
        });
        assert_eq!(lines.lock().unwrap().len(), 1);
        assert_eq!(sink.finished(), 2, "the ring keeps recording");
    }
}
