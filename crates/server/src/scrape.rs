//! The `--metrics-addr` pull endpoint: a minimal HTTP/1.1 responder that
//! serves the metrics exposition ([`crate::expo`]) to scrapers.
//!
//! This is deliberately not a web server: one accept thread handing each
//! connection to a short-lived responder thread (so a scraper that hangs
//! mid-request cannot delay the next scrape), blocking per-request I/O
//! with short timeouts and a byte cap, `Connection: close` on every
//! response. `GET /metrics` (or `/`) answers `200` with the plaintext
//! exposition (`text/plain; version=0.0.4`); any other path answers `404`;
//! anything unreadable as a request line answers `400`. The listener polls
//! a nonblocking accept so [`MetricsListener::shutdown`] (or drop) stops it
//! promptly without needing a wakeup connection.
//!
//! Scraping is off the request path entirely: a scrape only reads the
//! lock-free counters, so a stuck or slow scraper cannot backpressure the
//! NDJSON protocol service.

use crate::service::Service;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How long the accept loop sleeps between polls, and the ceiling on how
/// long shutdown can take to be observed.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection I/O timeout: a scraper that stalls mid-request is cut
/// off rather than pinning its responder thread.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on the bytes read from one scraper (request line plus headers). A
/// real scrape request is ~100 bytes; a peer that streams more than this
/// is answered from what arrived and cut off, instead of growing a buffer.
const MAX_SCRAPE_REQUEST_BYTES: u64 = 8 * 1024;

/// A running metrics scrape endpoint. Stops serving on
/// [`MetricsListener::shutdown`] or drop.
#[derive(Debug)]
pub struct MetricsListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl MetricsListener {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks an ephemeral one)
    /// and starts the single listener thread serving scrapes of `service`.
    pub fn bind(service: Arc<Service>, addr: &str) -> io::Result<MetricsListener> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking accept + poll: the loop observes `stop` without a
        // self-connection to wake it.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let observed_stop = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("lcl-metrics-scrape".to_string())
            .spawn(move || {
                while !observed_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Each scrape gets its own short-lived thread: a
                            // scraper that connects and hangs times out on
                            // *its* thread while the listener keeps
                            // accepting. Serving inline would let one wedged
                            // peer delay every later scrape by the full I/O
                            // timeout. A scrape failure (peer vanished, bad
                            // request, spawn refused) only affects that
                            // scraper.
                            let scraped = Arc::clone(&service);
                            let _ = thread::Builder::new()
                                .name("lcl-metrics-scrape-conn".to_string())
                                .spawn(move || {
                                    let _ = serve_scrape(&scraped, stream);
                                });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(ACCEPT_POLL);
                        }
                        // Transient accept errors (EMFILE, resets): back off
                        // and keep listening.
                        Err(_) => thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;
        Ok(MetricsListener {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers one scrape connection and closes it.
fn serve_scrape(service: &Service, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT))?;
    // The byte cap bounds the whole request read (line and headers): past
    // it every read_line returns 0, which ends the drain loop below.
    let mut reader = io::Read::take(
        BufReader::new(stream.try_clone()?),
        MAX_SCRAPE_REQUEST_BYTES,
    );
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line
        .strip_prefix("GET ")
        .and_then(|rest| rest.split(' ').next());
    // Drain the request headers so the peer never sees a reset from
    // unread-input teardown; ignore their content.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let capped = reader.limit() == 0;
    let mut stream = reader.into_inner().into_inner();
    let outcome = match path {
        Some("/metrics") | Some("/") => {
            let body = crate::expo::render_exposition(service);
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        Some(_) => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only /metrics is served here\n",
        ),
        None => respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "expected `GET /metrics HTTP/1.1`\n",
        ),
    };
    // When the byte cap cut the request short, discard (bounded) what it
    // left unread before closing: dropping a socket with pending input
    // resets it, and the reset can outrun the response bytes on the
    // peer's side. Normal requests were read to their blank line and skip
    // this, so their responder thread never waits out the read timeout.
    if capped {
        let _ = io::copy(
            &mut io::Read::take(&stream, 8 * MAX_SCRAPE_REQUEST_BYTES),
            &mut io::sink(),
        );
    }
    outcome
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::validate_exposition;
    use lcl_paths::Engine;
    use std::io::Read;

    fn listener() -> MetricsListener {
        let service = Arc::new(Service::new(Engine::builder().parallelism(1).build()));
        MetricsListener::bind(service, "127.0.0.1:0").expect("bind ephemeral")
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn a_scrape_returns_a_valid_exposition() {
        let listener = listener();
        let (head, body) = get(listener.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(
            head.contains("Content-Type: text/plain; version=0.0.4"),
            "{head}"
        );
        assert!(
            head.contains(&format!("Content-Length: {}", body.len())),
            "{head}"
        );
        validate_exposition(&body).expect("scraped exposition validates");
    }

    #[test]
    fn unknown_paths_get_404_and_garbage_gets_400() {
        let listener = listener();
        let (head, _) = get(listener.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let mut stream = TcpStream::connect(listener.addr()).expect("connect");
        write!(stream, "PUT /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }

    #[test]
    fn a_hung_scraper_does_not_wedge_subsequent_scrapes() {
        let listener = listener();
        let addr = listener.addr();
        // Two scrapers connect and send nothing. Served inline, each would
        // hold the listener for the full per-connection I/O timeout and the
        // real scrape below would wait out both.
        let _hung_one = TcpStream::connect(addr).expect("connect");
        let _hung_two = TcpStream::connect(addr).expect("connect");
        // Let the accept loop pick both up before the real scrape arrives.
        thread::sleep(Duration::from_millis(100));
        let started = std::time::Instant::now();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        validate_exposition(&body).expect("scrape behind hung peers validates");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "scrape waited {:?} behind hung peers",
            started.elapsed()
        );
    }

    #[test]
    fn an_oversized_request_is_answered_from_the_capped_prefix() {
        let listener = listener();
        let mut stream = TcpStream::connect(listener.addr()).expect("connect");
        // A request line far past the byte cap: the responder answers from
        // the prefix it read (an unknown path → 404) instead of buffering
        // the rest.
        let long = "x".repeat(64 * 1024);
        write!(stream, "GET /{long} HTTP/1.1\r\n\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }

    #[test]
    fn shutdown_stops_serving() {
        let mut listener = listener();
        let addr = listener.addr();
        listener.shutdown();
        listener.shutdown(); // idempotent
                             // The port may be reachable briefly on some stacks, but a fresh
                             // connection must not be answered once the thread is joined.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                let _ = write!(stream, "GET /metrics HTTP/1.1\r\n\r\n");
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut response = String::new();
                assert!(
                    stream.read_to_string(&mut response).is_err() || response.is_empty(),
                    "a shut-down listener must not answer: {response}"
                );
            }
        }
    }
}
