//! # lcl-server
//!
//! A dependency-free (`std::net` + `std::thread`) network service exposing
//! the LCL classification pipeline — the `Engine` of `lcl-classifier` — over
//! a newline-delimited JSON (NDJSON) protocol.
//!
//! Every frame is one line of JSON: requests are
//! [`RequestEnvelope`](lcl_paths::problem::RequestEnvelope)s
//! (`{"v":1,"id":7,"kind":"classify","payload":{…}}`), responses are
//! [`ResponseEnvelope`](lcl_paths::problem::ResponseEnvelope)s echoing the
//! request id and carrying either a payload or a structured error reply
//! derived from [`lcl_paths::Error`]. Nine request kinds are served:
//! `classify`, `classify_many`, `solve`, `solve_stream`, `generate`,
//! `stats`, `health`, `metrics` and `snapshot` (see `docs/PROTOCOL.md` at the
//! repository root for the full specification). `solve_stream` labels paths and cycles of
//! millions of nodes without ever materializing them: the reply is a
//! sequence of ordered chunk frames ([`StreamFrame`]) bounded by
//! [`Service::max_chunk_bytes`], produced under end-to-end backpressure on
//! both backends; `generate` draws seeded problems from the
//! [`lcl_paths::gen`] workload families.
//!
//! The same [`Service`] dispatch runs over two framings:
//!
//! * **TCP** ([`Server`]) — *pipelined* connections: every frame is
//!   dispatched into the engine's *persistent worker pool* immediately
//!   (bounded per-connection window, [`Server::max_inflight`]) and replies
//!   are emitted **in request order**, so a single connection can keep the
//!   whole pool busy; nothing is spawned on the per-request path, and
//!   [`ServerHandle`] shuts the listener and every open connection down
//!   gracefully. Two interchangeable connection [`Backend`]s implement the
//!   identical wire contract: an epoll **reactor** (Linux, default there)
//!   that serves *all* connections on one event-loop thread — thousands of
//!   sockets on a fixed thread budget — and the portable **threads**
//!   backend (a reader/writer thread pair per connection).
//!   [`Server::max_conns`] caps the accepted-connection count either way;
//! * **stdio** ([`serve_stdio`]) — the `lcl-serve --stdio` pipe mode, same
//!   frames over stdin/stdout, lock-step.
//!
//! [`Client`] is the matching blocking client helper used by the integration
//! tests, the CI smoke step and the `server_throughput` bench;
//! [`Client::classify_many_pipelined`] floods the server's window instead of
//! lock-stepping round-trips. See `docs/ARCHITECTURE.md` at the repository
//! root for how the crates fit together, and `docs/PROTOCOL.md` for the
//! ordering guarantees a pipelined client may rely on.
//!
//! # Example
//!
//! ```
//! use lcl_paths::{problems, Engine};
//! use lcl_server::{Client, Server, Service};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = Arc::new(Service::new(Engine::builder().parallelism(2).build()));
//! let server = Server::bind(service, "127.0.0.1:0")?; // ephemeral port
//! let handle = server.start()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let verdict = client.classify(&problems::coloring(3).to_spec())?;
//! assert_eq!(verdict.complexity.wire_name(), "log-star");
//! assert_eq!(client.health()?.require("status")?.as_str()?, "ok");
//!
//! drop(client);
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the reactor backend's epoll binding
// (`reactor/sys.rs`) is the one module allowed to contain `unsafe` — raw
// `extern "C"` declarations in the spirit of the workspace's offline
// `shims/`. Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admission;
pub mod client;
mod expo;
mod frame;
mod metrics;
#[cfg(target_os = "linux")]
mod reactor;
mod scrape;
mod service;
mod splice;
mod stdio;
mod tcp;
mod trace;

pub use admission::AdmissionConfig;
pub use client::{Client, ClientError, SolveReply, StreamSummary, DEFAULT_PIPELINE_WINDOW};
pub use expo::{render_exposition, validate_exposition};
pub use frame::MAX_FRAME_BYTES;
pub use metrics::{KindStats, ServerMetrics};
pub use scrape::MetricsListener;
pub use service::{
    error_reply, PendingResponse, RequestKind, Service, StreamFrame, DEFAULT_MAX_CHUNK_BYTES,
};
pub use splice::SplicedReply;
pub use stdio::serve_stdio;
pub use tcp::{Backend, Server, ServerHandle, BACKEND_ENV_VAR, DEFAULT_MAX_INFLIGHT};
pub use trace::{slow_trace_line, TraceSink, DEFAULT_TRACE_RING_CAPACITY};
