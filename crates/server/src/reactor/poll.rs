//! Safe RAII wrappers over the raw bindings of [`super::sys`]: an [`Epoll`]
//! instance and an [`EventFd`] waker. Everything here owns its file
//! descriptor and closes it on drop; all error reporting goes through
//! `io::Error::last_os_error()` so `errno` semantics (`EINTR`, `EAGAIN`)
//! surface as ordinary `io::ErrorKind`s.

use super::sys;
use std::io;
use std::os::unix::io::RawFd;

pub(crate) use sys::{EpollEvent, EPOLLIN, EPOLLOUT};

/// How many readiness records one `epoll_wait` call can return; the event
/// loop simply calls again for anything beyond this.
pub(crate) const EVENT_BATCH: usize = 256;

fn last_error() -> io::Error {
    io::Error::last_os_error()
}

/// An owned `epoll` instance.
#[derive(Debug)]
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub(crate) fn new() -> io::Result<Epoll> {
        let fd = sys::sys_epoll_create();
        if fd < 0 {
            return Err(last_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        if sys::sys_epoll_ctl(self.fd, op, fd, interest, token) < 0 {
            return Err(last_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub(crate) fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes a registered fd's interest mask (token is re-stated).
    pub(crate) fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready (or `timeout_ms`
    /// passes; `-1` blocks indefinitely) and returns the ready records.
    /// `EINTR` is retried internally.
    pub(crate) fn wait<'b>(
        &self,
        buf: &'b mut [EpollEvent; EVENT_BATCH],
        timeout_ms: i32,
    ) -> io::Result<&'b [EpollEvent]> {
        loop {
            let n = sys::sys_epoll_wait(self.fd, &mut buf[..], timeout_ms);
            if n >= 0 {
                return Ok(&buf[..n as usize]);
            }
            let err = last_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = sys::sys_close(self.fd);
    }
}

/// An owned, nonblocking `eventfd` used as a cross-thread waker: worker
/// threads [`signal`](EventFd::signal) it, the reactor registers it in its
/// [`Epoll`] set and [`drain`](EventFd::drain)s it on wakeup. Signaling is
/// async-signal-safe-grade cheap (one `write(2)`), never blocks (a
/// saturated counter already implies a pending wakeup), and is safe from
/// any thread through a shared reference.
#[derive(Debug)]
pub(crate) struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates the eventfd (cloexec + nonblocking).
    pub(crate) fn new() -> io::Result<EventFd> {
        let fd = sys::sys_eventfd();
        if fd < 0 {
            return Err(last_error());
        }
        let eventfd = EventFd { fd };
        if sys::sys_set_nonblocking(fd) < 0 {
            return Err(last_error()); // eventfd closed by the drop
        }
        Ok(eventfd)
    }

    /// The raw fd, for registration in an [`Epoll`] set.
    pub(crate) fn raw(&self) -> RawFd {
        self.fd
    }

    /// Wakes whoever is polling this fd. Best-effort by design: the only
    /// failure mode of a nonblocking counter write is saturation, which
    /// already guarantees a pending wakeup.
    pub(crate) fn signal(&self) {
        let _ = sys::sys_eventfd_signal(self.fd);
    }

    /// Consumes all pending wakeups so the (level-triggered) fd parks again.
    pub(crate) fn drain(&self) {
        let _ = sys::sys_eventfd_read(self.fd);
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = sys::sys_close(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_signals_wake_epoll_and_drain_parks_it() {
        let epoll = Epoll::new().expect("epoll_create1");
        let waker = EventFd::new().expect("eventfd");
        epoll.add(waker.raw(), EPOLLIN, 7).expect("register");
        let mut buf = [EpollEvent::default(); EVENT_BATCH];

        // Nothing pending: a zero timeout returns empty.
        assert!(epoll.wait(&mut buf, 0).expect("wait").is_empty());

        waker.signal();
        waker.signal(); // coalesces into the same counter
        let ready = epoll.wait(&mut buf, 1000).expect("wait").to_vec();
        assert_eq!(ready.len(), 1);
        let token = ready[0].data; // copy out: the packed field cannot be referenced
        assert_eq!(token, 7, "the registered token comes back");

        waker.drain();
        assert!(
            epoll.wait(&mut buf, 0).expect("wait").is_empty(),
            "drained eventfd must park again"
        );
    }

    #[test]
    fn socket_readiness_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let epoll = Epoll::new().expect("epoll_create1");
        epoll
            .add(listener.as_raw_fd(), EPOLLIN, 42)
            .expect("register listener");
        let mut buf = [EpollEvent::default(); EVENT_BATCH];
        assert!(epoll.wait(&mut buf, 0).expect("wait").is_empty());

        let mut client = TcpStream::connect(addr).expect("connect");
        let ready = epoll.wait(&mut buf, 5000).expect("wait").to_vec();
        assert!(ready.iter().any(|e| e.data == 42), "accept readiness");

        let (peer, _) = listener.accept().expect("accept");
        peer.set_nonblocking(true).expect("nonblocking");
        epoll
            .add(peer.as_raw_fd(), EPOLLIN | EPOLLOUT, 43)
            .expect("register peer");
        client.write_all(b"hello\n").expect("write");
        let ready = epoll.wait(&mut buf, 5000).expect("wait").to_vec();
        let peer_event = ready
            .iter()
            .find(|e| e.data == 43)
            .expect("peer readiness reported");
        let events = peer_event.events;
        assert!(events & EPOLLIN != 0, "readable after the client wrote");

        epoll.delete(peer.as_raw_fd()).expect("deregister");
        epoll.modify(listener.as_raw_fd(), 0, 42).expect("modify");
    }
}
