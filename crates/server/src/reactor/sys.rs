//! Minimal, dependency-free Linux `epoll`/`eventfd` bindings.
//!
//! The container this repository builds in has no crates.io access, so — in
//! the same spirit as the workspace's `shims/` — the readiness primitives
//! are declared directly against the C library with `extern "C"` instead of
//! pulling in `libc`/`mio`. Only what the reactor actually needs is bound:
//! `epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`, `close`,
//! `read`/`write` (for the eventfd counter), `writev` (the event loop's
//! vectored reply flush) and `fcntl` (to flip the eventfd nonblocking).
//!
//! This is the **only** module in the crate allowed to contain `unsafe`
//! (`#[allow(unsafe_code)]` at the module item; the crate denies it
//! everywhere else), and every unsafe block is a single foreign call with
//! its arguments fully owned by the caller. Everything above this module —
//! [`Epoll`](super::poll::Epoll), [`EventFd`](super::poll::EventFd), the
//! event loop — is safe Rust holding RAII-closed file descriptors.

use std::ffi::{c_int, c_uint, c_void};

/// One readiness record, as `epoll_wait` fills them in.
///
/// Mirrors `struct epoll_event`, whose layout is architecture-dependent: the
/// kernel packs it to 4-byte alignment **on x86-64 only** (`EPOLL_PACKED` is
/// defined under `__x86_64__`; 12 bytes, `data` at offset 4), while every
/// other architecture uses natural alignment (16 bytes, `data` at offset 8).
/// The `cfg_attr` mirrors exactly that. Fields are only ever read by copy
/// (never by reference), which is the safe access pattern for packed
/// structs.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Copy, Clone, Default)]
pub(crate) struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub(crate) events: u32,
    /// The caller-chosen token registered with the fd.
    pub(crate) data: u64,
}

pub(crate) const EPOLL_CTL_ADD: c_int = 1;
pub(crate) const EPOLL_CTL_DEL: c_int = 2;
pub(crate) const EPOLL_CTL_MOD: c_int = 3;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;

/// One gather segment for [`sys_writev`]. Mirrors `struct iovec`
/// (`<sys/uio.h>`): a base pointer plus a length, naturally aligned on
/// every architecture.
#[repr(C)]
#[derive(Copy, Clone)]
pub(crate) struct IoVec {
    base: *const c_void,
    len: usize,
}

impl IoVec {
    /// An empty segment, for initializing a gather array.
    pub(crate) fn empty() -> IoVec {
        IoVec {
            base: std::ptr::null(),
            len: 0,
        }
    }

    /// Points the segment at `bytes`. The caller keeps `bytes` alive and
    /// unmoved until the [`sys_writev`] call returns — trivially true for
    /// the reactor, which builds the gather array and issues the call in
    /// one expression scope.
    pub(crate) fn from_bytes(bytes: &[u8]) -> IoVec {
        IoVec {
            base: bytes.as_ptr().cast::<c_void>(),
            len: bytes.len(),
        }
    }
}

/// `EPOLL_CLOEXEC` == `O_CLOEXEC`.
const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `EFD_CLOEXEC` == `O_CLOEXEC`.
const EFD_CLOEXEC: c_int = 0o2000000;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

#[allow(unsafe_code)]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

/// `epoll_create1(EPOLL_CLOEXEC)`; the returned fd, or -1 with `errno` set.
#[allow(unsafe_code)]
pub(crate) fn sys_epoll_create() -> c_int {
    unsafe { epoll_create1(EPOLL_CLOEXEC) }
}

/// `epoll_ctl` with an interest mask and token (ignored for `DEL`).
#[allow(unsafe_code)]
pub(crate) fn sys_epoll_ctl(epfd: c_int, op: c_int, fd: c_int, events: u32, token: u64) -> c_int {
    let mut event = EpollEvent {
        events,
        data: token,
    };
    unsafe { epoll_ctl(epfd, op, fd, &mut event) }
}

/// `epoll_wait` into `buf`; returns the number of ready records, or -1 with
/// `errno` set (notably `EINTR`).
#[allow(unsafe_code)]
pub(crate) fn sys_epoll_wait(epfd: c_int, buf: &mut [EpollEvent], timeout_ms: c_int) -> c_int {
    unsafe {
        epoll_wait(
            epfd,
            buf.as_mut_ptr(),
            buf.len().min(c_int::MAX as usize) as c_int,
            timeout_ms,
        )
    }
}

/// `eventfd(0, EFD_CLOEXEC)`; nonblocking mode is applied separately with
/// [`sys_set_nonblocking`].
#[allow(unsafe_code)]
pub(crate) fn sys_eventfd() -> c_int {
    unsafe { eventfd(0, EFD_CLOEXEC) }
}

/// Flips `O_NONBLOCK` on via `fcntl(F_GETFL)`/`fcntl(F_SETFL)`.
#[allow(unsafe_code)]
pub(crate) fn sys_set_nonblocking(fd: c_int) -> c_int {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return flags;
    }
    unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }
}

/// `close(fd)`.
#[allow(unsafe_code)]
pub(crate) fn sys_close(fd: c_int) -> c_int {
    unsafe { close(fd) }
}

/// Reads the eventfd's 8-byte counter (resetting it); the byte count read,
/// or -1 with `errno` set (`EAGAIN` when the counter is zero).
#[allow(unsafe_code)]
pub(crate) fn sys_eventfd_read(fd: c_int) -> isize {
    let mut counter: u64 = 0;
    unsafe { read(fd, (&mut counter as *mut u64).cast::<c_void>(), 8) }
}

/// Adds 1 to the eventfd's counter; the byte count written, or -1 with
/// `errno` set (`EAGAIN` when the counter is saturated — a wakeup is already
/// pending, so that is not an error for our purposes).
#[allow(unsafe_code)]
pub(crate) fn sys_eventfd_signal(fd: c_int) -> isize {
    let one: u64 = 1;
    unsafe { write(fd, (&one as *const u64).cast::<c_void>(), 8) }
}

/// `writev(fd, iov, iovcnt)`: writes the gather segments in order as one
/// syscall; the byte count written (which may end mid-segment), or -1 with
/// `errno` set (`EAGAIN` when the socket buffer is full).
#[allow(unsafe_code)]
pub(crate) fn sys_writev(fd: c_int, iov: &[IoVec]) -> isize {
    unsafe {
        writev(
            fd,
            iov.as_ptr(),
            iov.len().min(c_int::MAX as usize) as c_int,
        )
    }
}
