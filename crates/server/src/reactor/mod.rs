//! The readiness-based connection backend: one `epoll`-driven event loop
//! serving every TCP connection on a **fixed thread budget** — the reactor
//! thread plus the engine's worker pool — instead of the portable thread
//! backend's two OS threads per connection.
//!
//! The protocol contract is byte-identical to the thread backend
//! (`docs/PROTOCOL.md` v1.1): per-connection in-order replies, id echo, the
//! exact `max_inflight` window, structured errors for malformed and
//! oversized frames, and backpressure by *not reading* from a connection
//! whose window is full. What changes is purely the execution shape:
//!
//! * **One event loop** ([`Reactor::run`]) owns the listener, every
//!   connection socket (all nonblocking) and an [`EventFd`] waker, parked in
//!   `epoll_wait` when nothing is ready.
//! * **Per-connection state machines** ([`Conn`]) carry what the thread
//!   backend kept in stack frames: a partial-frame read buffer, the in-order
//!   queue of [`PendingReply`]s, the serialized-but-unwritten output bytes,
//!   and the in-flight window accounting (a slot is taken when a frame is
//!   dispatched and released when its reply's bytes have been fully written
//!   to the socket).
//! * **Completion signaling** replaces the parked writer thread: every
//!   dispatched frame carries a notify hook
//!   ([`Service::dispatch_line_notify`] →
//!   [`lcl_paths::Engine::dispatch_notify`]) that marks the connection
//!   dirty and signals the eventfd once the reply is observable, so the
//!   reactor wakes, resolves the connection's queue head and writes.
//! * **Interest toggling** drives backpressure both ways: read interest is
//!   dropped while the window is full (the peer's frames pend in kernel
//!   buffers as plain TCP flow control), write interest is raised only
//!   while serialized reply bytes could not be written without blocking. A
//!   socket with no interest at all is deregistered entirely, which also
//!   keeps `EPOLLHUP`-spamming dead peers from busy-looping the reactor.
//!
//! The module is Linux-only (`epoll`); `crate::tcp` keeps the
//! thread-per-connection code as the portable fallback and picks the
//! default per platform ([`crate::Backend`]).

mod poll;
mod sys;

pub(crate) use poll::EventFd;

use crate::frame::{into_string, MAX_FRAME_BYTES};
use crate::service::{Service, StreamFrame};
use crate::splice::FRAME_TAIL;
use crate::tcp::PendingReply;
use crate::trace::Trace;
use poll::{Epoll, EpollEvent, EPOLLIN, EPOLLOUT, EVENT_BATCH};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use sys::IoVec;

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the control eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Bytes read from a ready socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Most output segments gathered into one `writev` call: consecutive ready
/// replies coalesce into a single syscall per flush iteration, and 16
/// segments comfortably cover a burst of five spliced replies.
const WRITEV_BATCH: usize = 16;

/// Shared control state between a running backend, its `ServerHandle` and
/// the worker pool's completion hooks: the shutdown flag, the eventfd that
/// wakes the event loop (or the thread backend's accept wait), and the
/// dirty list of connections whose jobs completed since the last wakeup.
#[derive(Debug)]
pub(crate) struct Control {
    shutdown: AtomicBool,
    wake: EventFd,
    dirty: Mutex<Vec<u64>>,
}

impl Control {
    /// Creates the control block (allocates the eventfd).
    pub(crate) fn new() -> io::Result<Arc<Control>> {
        Ok(Arc::new(Control {
            shutdown: AtomicBool::new(false),
            wake: EventFd::new()?,
            dirty: Mutex::new(Vec::new()),
        }))
    }

    /// Requests shutdown and wakes whatever loop is parked on the eventfd.
    /// This is what replaced the old "dial your own listen address" hack:
    /// shutdown no longer depends on the listen address being connectable.
    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.signal();
    }

    /// Whether shutdown has been requested.
    pub(crate) fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The eventfd loops register for wakeups.
    pub(crate) fn waker(&self) -> &EventFd {
        &self.wake
    }

    /// Called from a worker's completion hook: records that `token` has a
    /// finished job and wakes the reactor.
    fn mark_dirty(&self, token: u64) {
        self.dirty
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(token);
        self.wake.signal();
    }

    /// Moves the accumulated dirty tokens into `into` (deduplication is the
    /// caller's concern).
    fn take_dirty(&self, into: &mut Vec<u64>) {
        into.append(
            &mut self
                .dirty
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
    }
}

/// The thread backend's accept-side wait on Linux: an epoll set holding
/// just the listener and the control eventfd, so a blocked accept loop can
/// be woken by [`Control::trigger_shutdown`] instead of by dialing its own
/// listen address.
pub(crate) struct AcceptPoll {
    epoll: Epoll,
}

impl AcceptPoll {
    /// Registers the listener and the control waker.
    pub(crate) fn new(listener: &TcpListener, control: &Control) -> io::Result<AcceptPoll> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(control.waker().raw(), EPOLLIN, TOKEN_WAKER)?;
        Ok(AcceptPoll { epoll })
    }

    /// Parks until the listener is ready or the control eventfd fires (the
    /// eventfd is deliberately never drained here: once shutdown signals it,
    /// every later wait returns immediately and the loop observes the flag).
    pub(crate) fn wait(&mut self) {
        let mut buf = [EpollEvent::default(); EVENT_BATCH];
        let _ = self.epoll.wait(&mut buf, -1);
    }
}

/// The readiness event loop: listener + waker + every connection, one
/// thread. Construct with [`Reactor::new`] (which registers the static fds,
/// so setup failures surface before any thread is spawned), then
/// [`Reactor::run`] until shutdown.
pub(crate) struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    service: Arc<Service>,
    control: Arc<Control>,
    max_inflight: usize,
    max_conns: usize,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Accepting is paused after a hard accept failure: the listener is out
    /// of the epoll set until the next wakeup re-arms it.
    listener_paused: bool,
}

impl Reactor {
    /// Sets up the epoll instance: nonblocking listener and the control
    /// eventfd registered, no connections yet.
    pub(crate) fn new(
        listener: TcpListener,
        service: Arc<Service>,
        control: Arc<Control>,
        max_inflight: usize,
        max_conns: usize,
    ) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(control.waker().raw(), EPOLLIN, TOKEN_WAKER)?;
        Ok(Reactor {
            epoll,
            listener,
            service,
            control,
            max_inflight: max_inflight.max(1),
            max_conns,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            listener_paused: false,
        })
    }

    /// Runs the event loop until [`Control::trigger_shutdown`]; on exit every
    /// open connection is closed and deregistered from the metrics gauges.
    ///
    /// # Errors
    ///
    /// A failed `epoll_wait` is fatal — there is nothing left to serve with;
    /// the error is returned after the cleanup so the caller can report it
    /// (the foreground `lcl-serve --addr` path exits nonzero on it).
    pub(crate) fn run(mut self) -> io::Result<()> {
        let outcome = self.serve();
        for _ in self.conns.drain() {
            self.service.metrics().connection_closed();
        }
        outcome
    }

    fn serve(&mut self) -> io::Result<()> {
        let mut buf = [EpollEvent::default(); EVENT_BATCH];
        let mut touched: Vec<u64> = Vec::new();
        loop {
            // While accepting is paused (see `accept_ready`), poll on a
            // short interval so the listener gets re-armed even if no other
            // event ever fires.
            let timeout_ms = if self.listener_paused { 50 } else { -1 };
            let ready = self.epoll.wait(&mut buf, timeout_ms)?;
            self.service.metrics().reactor_wakeup();
            if self.control.shutdown_requested() {
                return Ok(());
            }
            touched.clear();
            let mut accept_ready = false;
            let mut woken = false;
            for event in ready {
                match event.data {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => woken = true,
                    token => touched.push(token),
                }
            }
            if woken {
                self.control.waker().drain();
                let before = touched.len();
                self.control.take_dirty(&mut touched);
                self.service
                    .metrics()
                    .reactor_completions((touched.len() - before) as u64);
            }
            if self.listener_paused
                && self
                    .epoll
                    .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                    .is_ok()
            {
                self.listener_paused = false;
                accept_ready = true; // readiness may have been missed while paused
            }
            if accept_ready {
                self.accept_ready();
            }
            // A connection can appear several times (socket event + several
            // completed jobs); pumping is idempotent but not free.
            touched.sort_unstable();
            touched.dedup();
            for &token in &touched {
                self.pump(token);
            }
        }
    }

    /// Accepts until the listener would block, registering each connection
    /// with read interest (or closing it straight away past `max_conns`).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.max_conns {
                        // Reject-with-close: the cap bounds fd usage, and a
                        // closed socket is an unambiguous signal the client
                        // can retry on.
                        self.service.metrics().connection_rejected();
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // One small response frame per request: Nagle would
                    // stall pipelined round-trips against delayed ACKs.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.epoll.add(stream.as_raw_fd(), EPOLLIN, token).is_err() {
                        continue; // fd pressure; drop the connection
                    }
                    self.service.metrics().connection_opened();
                    self.conns
                        .insert(token, Conn::new(stream, token, self.max_inflight));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard accept failure (fd exhaustion, aborted
                    // handshake). The level-triggered listener would
                    // re-report readiness on every wait; sleeping here would
                    // stall every open connection, so pause accepting
                    // instead — drop the listener's registration and let the
                    // short-timeout poll in `serve` re-arm it.
                    if self.epoll.delete(self.listener.as_raw_fd()).is_ok() {
                        self.listener_paused = true;
                    } else {
                        // Could not even deregister: last-resort backoff so
                        // the loop cannot spin hot.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    break;
                }
            }
        }
    }

    /// Runs one connection's state machine to quiescence, then closes it or
    /// re-arms its epoll interest.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // completion notice for an already-closed connection
        };
        conn.pump(&self.service, &self.control);
        if conn.finished() {
            if conn.registered {
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
            }
            self.conns.remove(&token);
            self.service.metrics().connection_closed();
            return;
        }
        let desired = conn.desired_interest();
        let rearmed = if desired == 0 {
            // Nothing to wait for on the socket (window full and output
            // drained): deregister entirely so a half-dead peer's EPOLLHUP
            // cannot busy-loop the reactor; job completions re-arm us.
            if conn.registered {
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
                conn.registered = false;
            }
            true
        } else if !conn.registered {
            conn.registered = self
                .epoll
                .add(conn.stream.as_raw_fd(), desired, token)
                .is_ok();
            conn.interest = desired;
            conn.registered
        } else if desired != conn.interest {
            conn.interest = desired;
            self.epoll
                .modify(conn.stream.as_raw_fd(), desired, token)
                .is_ok()
        } else {
            true
        };
        if !rearmed {
            // Epoll bookkeeping failed (fd pressure): the connection can
            // never be woken again, so close it now rather than leak it.
            self.conns.remove(&token);
            self.service.metrics().connection_closed();
        }
    }
}

/// One piece of a connection's pending output. Replies are enqueued as
/// segments instead of being copied into one flat buffer: an owned segment
/// *moves* the job's serialized `String` (no copy, no per-frame
/// reallocation), a shared segment *borrows* the engine's cached reply
/// payload (a spliced reply never copies its bytes at all), and the flush
/// gathers up to [`WRITEV_BATCH`] segments into one vectored write.
enum OutSeg {
    /// An owned serialized frame (the dispatch job's `String`, moved in).
    Owned(Vec<u8>),
    /// Payload bytes shared with the engine's reply-bytes cache.
    Shared(Arc<[u8]>),
    /// A constant piece (the spliced frame's `}` + newline tail).
    Static(&'static [u8]),
}

impl OutSeg {
    fn as_bytes(&self) -> &[u8] {
        match self {
            OutSeg::Owned(bytes) => bytes,
            OutSeg::Shared(bytes) => bytes,
            OutSeg::Static(bytes) => bytes,
        }
    }
}

/// One connection's complete state: everything the thread backend kept in
/// two blocked threads' stacks, as data.
struct Conn {
    stream: TcpStream,
    token: u64,
    window: usize,
    /// The peer's IP, captured at accept time for per-client quotas.
    peer: Option<IpAddr>,
    /// Bytes read off the socket, not yet consumed as frames.
    read_buf: Vec<u8>,
    /// Start of the unconsumed region in `read_buf`; frames are consumed by
    /// advancing this cursor, and `parse` compacts the buffer once per call.
    consumed: usize,
    /// Scan position: `read_buf[consumed..scanned]` holds no newline.
    scanned: usize,
    /// Mid-discard of an oversized frame (no newline seen yet).
    overflowed: bool,
    /// When the in-progress overflow was detected, so the rejection
    /// accounts the full discard drain into the `invalid` histogram
    /// (mirrors `frame::read_frame`'s `Frame::Oversized::started`).
    overflow_started: Option<Instant>,
    /// Bytes discarded so far from the oversized frame.
    discarded: usize,
    /// Peer half-closed its write side; drain the window, then finish.
    eof: bool,
    /// Unrecoverable socket error; finish immediately.
    dead: bool,
    /// In-order reply queue: one entry per dispatched frame.
    pending: VecDeque<PendingReply>,
    /// Window slots taken: frames dispatched whose replies are not yet
    /// fully written to the socket. Always `<= window`.
    inflight: usize,
    /// Serialized replies awaiting (or mid-) write, as ordered segments.
    /// Fully-written segments are popped; the front segment may be
    /// partially written (`seg_written`).
    out: VecDeque<OutSeg>,
    /// Total bytes ever enqueued on `out` (a cumulative stream offset).
    out_enqueued: u64,
    /// Total bytes ever written to the socket; `out_enqueued - out_written`
    /// is the unflushed backlog.
    out_written: u64,
    /// Bytes of the front segment already written (mid-segment progress of
    /// a short write).
    seg_written: usize,
    /// Cumulative end offset of each queued reply, in order; crossing one
    /// while writing releases a window slot and stamps that reply's trace
    /// write stage (the bytes actually entered the socket).
    reply_ends: VecDeque<(u64, Option<Arc<Trace>>)>,
    /// Interest mask currently registered with the epoll instance.
    interest: u32,
    /// Whether the fd is currently in the epoll set at all.
    registered: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64, window: usize) -> Conn {
        let peer = stream.peer_addr().ok().map(|addr| addr.ip());
        Conn {
            stream,
            token,
            window,
            peer,
            read_buf: Vec::new(),
            consumed: 0,
            scanned: 0,
            overflowed: false,
            overflow_started: None,
            discarded: 0,
            eof: false,
            dead: false,
            pending: VecDeque::new(),
            inflight: 0,
            out: VecDeque::new(),
            out_enqueued: 0,
            out_written: 0,
            seg_written: 0,
            reply_ends: VecDeque::new(),
            interest: EPOLLIN,
            registered: true,
        }
    }

    /// Runs read → parse/dispatch → resolve → write until no stage can make
    /// progress. Stages feed each other in both directions (writing releases
    /// window slots, which unblocks parsing), hence the fixpoint loop.
    fn pump(&mut self, service: &Arc<Service>, control: &Arc<Control>) {
        loop {
            let mut progressed = self.fill();
            progressed |= self.parse(service, control);
            progressed |= self.resolve(service);
            progressed |= self.flush(service);
            if !progressed || self.dead {
                break;
            }
        }
    }

    /// The connection is over: a socket error, or EOF with every reply
    /// written and every buffered byte consumed.
    fn finished(&self) -> bool {
        self.dead
            || (self.eof
                && self.pending.is_empty()
                && self.out_written == self.out_enqueued
                && self.read_buf.is_empty()
                && !self.overflowed)
    }

    /// The epoll interest this connection currently needs: readable while
    /// the window has room, writable while serialized output is stuck.
    fn desired_interest(&self) -> u32 {
        let mut mask = 0;
        if !self.eof && self.inflight < self.window {
            mask |= EPOLLIN;
        }
        if self.out_written < self.out_enqueued {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Reads from the socket while the window accepts dispatches **and**
    /// the buffer is below its cap. Not reading on a full window is the
    /// backpressure contract: the peer's frames pend in kernel buffers as
    /// ordinary TCP flow control. The buffer cap (one maximum frame plus a
    /// read chunk) keeps a flooding client from growing `read_buf` past
    /// what the parser can consume — anything buffered beyond
    /// `MAX_FRAME_BYTES` already guarantees the parser a complete frame or
    /// an oversized rejection, so further bytes can stay in the kernel.
    fn fill(&mut self) -> bool {
        if self.eof || self.dead || self.inflight >= self.window {
            return false;
        }
        let mut progressed = false;
        let mut chunk = [0u8; READ_CHUNK];
        while self.read_buf.len() <= MAX_FRAME_BYTES {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    progressed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                    if n < chunk.len() {
                        break; // socket very likely drained
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }

    /// Consumes complete frames from `read_buf` — dispatching each into the
    /// worker pool with this connection's completion hook — while window
    /// slots are available. Mirrors `frame::read_frame` exactly: blank lines
    /// are skipped without a reply, over-limit lines are discarded up to
    /// their newline and answered with a structured rejection, a final
    /// unterminated line at EOF counts as a frame.
    ///
    /// Frames are consumed by advancing the `consumed` cursor; the buffer
    /// is compacted **once** per call, so a burst of N buffered frames
    /// costs O(buffer) rather than O(N × buffer) in byte moves.
    fn parse(&mut self, service: &Arc<Service>, control: &Arc<Control>) -> bool {
        let mut progressed = false;
        while self.inflight < self.window && !self.dead {
            if self.overflowed {
                match find_newline(&self.read_buf, self.consumed) {
                    Some(pos) => {
                        self.discarded += pos - self.consumed;
                        self.consume_to(pos + 1);
                        self.finish_overflow(service);
                        progressed = true;
                    }
                    None => {
                        self.discarded += self.read_buf.len() - self.consumed;
                        self.consume_to(self.read_buf.len());
                        if !self.eof {
                            break; // need more bytes (or the close)
                        }
                        self.finish_overflow(service);
                        progressed = true;
                    }
                }
                continue;
            }
            match find_newline(&self.read_buf, self.scanned.max(self.consumed)) {
                Some(pos) if pos - self.consumed > MAX_FRAME_BYTES => {
                    // The whole line arrived before the limit check could
                    // interrupt it; reject it exactly like a streamed one.
                    self.overflow_started = Some(Instant::now());
                    self.discarded = pos - self.consumed;
                    self.consume_to(pos + 1);
                    self.finish_overflow(service);
                    progressed = true;
                }
                Some(pos) => {
                    let line = into_string(self.read_buf[self.consumed..pos].to_vec());
                    self.consume_to(pos + 1);
                    if !line.trim().is_empty() {
                        self.dispatch(line, service, control);
                    }
                    progressed = true;
                }
                None if self.read_buf.len() - self.consumed > MAX_FRAME_BYTES => {
                    self.overflowed = true;
                    self.overflow_started = Some(Instant::now());
                    self.discarded = self.read_buf.len() - self.consumed;
                    self.consume_to(self.read_buf.len());
                    progressed = true;
                }
                None if self.eof && self.consumed < self.read_buf.len() => {
                    // Final unterminated line (pipes often omit the newline).
                    let line = into_string(self.read_buf[self.consumed..].to_vec());
                    self.consume_to(self.read_buf.len());
                    if !line.trim().is_empty() {
                        self.dispatch(line, service, control);
                    }
                    progressed = true;
                }
                None => {
                    self.scanned = self.read_buf.len();
                    break;
                }
            }
        }
        // One compaction per call: drop the consumed prefix.
        if self.consumed > 0 {
            self.read_buf.drain(..self.consumed);
            self.scanned = self.scanned.saturating_sub(self.consumed);
            self.consumed = 0;
        }
        progressed
    }

    /// Advances the consumed cursor to `to` and resets the newline-scan
    /// position (everything before `to` is spoken for).
    fn consume_to(&mut self, to: usize) {
        self.consumed = to;
        self.scanned = to;
    }

    /// Dispatches one frame into the pool, taking a window slot; the job's
    /// completion hook marks this connection dirty and wakes the reactor.
    fn dispatch(&mut self, line: String, service: &Arc<Service>, control: &Arc<Control>) {
        let control = Arc::clone(control);
        let token = self.token;
        let pending =
            service.dispatch_line_notify_from(line, self.peer, move || control.mark_dirty(token));
        self.pending.push_back(PendingReply::Deferred(pending));
        self.inflight += 1;
    }

    /// Enqueues the structured rejection for a discarded oversized frame
    /// (this too occupies a window slot until written, like any reply).
    fn finish_overflow(&mut self, service: &Arc<Service>) {
        let started = self.overflow_started.take().unwrap_or_else(Instant::now);
        let reply = service
            .reject_oversized_at(self.discarded, started)
            .into_json_string();
        self.overflowed = false;
        self.discarded = 0;
        self.pending.push_back(PendingReply::Ready(reply));
        self.inflight += 1;
    }

    /// Moves completed replies — strictly from the queue head, which is the
    /// in-order guarantee — into the output buffer. Stops at the first
    /// still-computing job; its completion hook will pump us again.
    ///
    /// A deferred head may be a *stream*: it yields chunk frames before its
    /// terminal envelope. Chunks are appended without marking a reply end —
    /// the window slot stays taken until the terminal frame — and the drain
    /// is bounded by the output backlog: once two chunk ceilings' worth of
    /// bytes sit unwritten, no further frames are pulled until the socket
    /// drains (EPOLLOUT re-pumps). The producer then blocks on its bounded
    /// frame channel; that chain — socket full → backlog capped → channel
    /// full → worker parked — is how a slow peer backpressures a
    /// million-node stream instead of it buffering here.
    fn resolve(&mut self, service: &Arc<Service>) -> bool {
        let backlog_cap = 2 * service.max_chunk_bytes() as u64;
        let mut progressed = false;
        while let Some(front) = self.pending.front_mut() {
            let frame = match front {
                PendingReply::Ready(line) => StreamFrame::Final(std::mem::take(line)),
                PendingReply::Deferred(pending) => {
                    if self.out_enqueued - self.out_written > backlog_cap {
                        break; // let the socket drain before pulling more
                    }
                    match pending.try_frame() {
                        Some(frame) => frame,
                        None => break,
                    }
                }
            };
            // A serialized frame *moves* into the output queue (the job's
            // `String` allocation becomes the segment — no copy); a spliced
            // reply contributes its head, the cache's shared payload bytes
            // and the constant tail as three segments, copying nothing.
            let terminal = match frame {
                StreamFrame::Chunk(line) => {
                    let mut bytes = line.into_bytes();
                    bytes.push(b'\n');
                    self.enqueue(OutSeg::Owned(bytes));
                    false
                }
                StreamFrame::Final(line) => {
                    let mut bytes = line.into_bytes();
                    bytes.push(b'\n');
                    self.enqueue(OutSeg::Owned(bytes));
                    true
                }
                StreamFrame::Spliced(spliced) => {
                    self.enqueue(OutSeg::Owned(spliced.head_bytes()));
                    self.enqueue(OutSeg::Shared(Arc::clone(spliced.payload())));
                    self.enqueue(OutSeg::Static(FRAME_TAIL));
                    true
                }
            };
            if terminal {
                let trace = match self.pending.pop_front() {
                    Some(PendingReply::Deferred(mut pending)) => pending.take_trace(),
                    _ => None,
                };
                self.reply_ends.push_back((self.out_enqueued, trace));
            }
            progressed = true;
        }
        progressed
    }

    /// Appends one output segment, advancing the cumulative enqueued
    /// offset.
    fn enqueue(&mut self, seg: OutSeg) {
        let len = seg.as_bytes().len();
        if len == 0 {
            return; // an empty segment would stall the flush loop
        }
        self.out_enqueued += len as u64;
        self.out.push_back(seg);
    }

    /// Writes queued output segments until the socket would block, gathering
    /// up to [`WRITEV_BATCH`] segments into one vectored write per
    /// iteration — a burst of ready replies (or the three pieces of a
    /// spliced reply) leaves in a single syscall — and releasing the window
    /// slot of every reply whose bytes fully left the queue.
    fn flush(&mut self, service: &Arc<Service>) -> bool {
        let mut progressed = false;
        while self.out_written < self.out_enqueued && !self.dead {
            let mut iov = [IoVec::empty(); WRITEV_BATCH];
            let mut segs = 0;
            for seg in self.out.iter().take(WRITEV_BATCH) {
                // Only the front segment can be partially written.
                let skip = if segs == 0 { self.seg_written } else { 0 };
                iov[segs] = IoVec::from_bytes(&seg.as_bytes()[skip..]);
                segs += 1;
            }
            let wrote = sys::sys_writev(self.stream.as_raw_fd(), &iov[..segs]);
            if wrote < 0 {
                match io::Error::last_os_error().kind() {
                    io::ErrorKind::WouldBlock => break,
                    io::ErrorKind::Interrupted => continue,
                    _ => self.dead = true,
                }
            } else if wrote == 0 {
                self.dead = true;
            } else {
                service.metrics().record_writev_batch();
                self.advance_written(wrote as usize);
                progressed = true;
            }
        }
        while self
            .reply_ends
            .front()
            .is_some_and(|&(end, _)| end <= self.out_written)
        {
            let (_, trace) = self.reply_ends.pop_front().expect("checked front");
            if let Some(trace) = trace {
                trace.finish_written();
            }
            self.inflight -= 1;
            progressed = true; // a freed slot can unblock parsing
        }
        progressed
    }

    /// Accounts `n` bytes written: pops fully-written segments (releasing
    /// owned buffers and shared payload references) and records the front
    /// segment's partial progress.
    fn advance_written(&mut self, mut n: usize) {
        self.out_written += n as u64;
        while n > 0 {
            let front_len = self
                .out
                .front()
                .expect("written bytes come from queued segments")
                .as_bytes()
                .len();
            let remaining = front_len - self.seg_written;
            if n >= remaining {
                n -= remaining;
                self.seg_written = 0;
                self.out.pop_front();
            } else {
                self.seg_written += n;
                n = 0;
            }
        }
    }
}

/// First newline at or after `from`.
fn find_newline(buf: &[u8], from: usize) -> Option<usize> {
    buf.get(from..)?
        .iter()
        .position(|&b| b == b'\n')
        .map(|pos| from + pos)
}
