//! Plaintext metrics exposition: the pull-style scrape document.
//!
//! [`render_exposition`] serializes every counter the server keeps — the
//! per-kind request counters and latency histograms ([`ServerMetrics`]),
//! the engine's cache (total and per-shard) and worker-pool stats, and the
//! stream time-to-first-chunk histogram — as one text document in the
//! Prometheus exposition format (version 0.0.4): `# HELP` / `# TYPE`
//! headers per family, one `name{labels} value` sample per line,
//! histograms as cumulative `le` buckets plus `_sum` / `_count`. The same
//! document is served by the `metrics` request kind (inside a JSON reply)
//! and by the `--metrics-addr` HTTP listener ([`crate::scrape`]).
//!
//! The document is a *pure function of the counter state*: same counters,
//! same bytes, whichever backend produced them. Only `lcl_uptime_seconds`
//! (wall clock) and the `backend` label of `lcl_build_info` depend on
//! anything other than the counters. Families render in a fixed order and
//! every label value the renderer emits is `[a-zA-Z0-9_.-]+`, so no label
//! escaping is ever needed.
//!
//! [`validate_exposition`] is the matching line-by-line checker used by the
//! integration tests and the `--smoke` harness: it fails on any sample
//! without a preceding `# TYPE`, duplicated families or samples,
//! non-monotone histogram buckets, or a histogram whose `+Inf` bucket
//! disagrees with its `_count`.
//!
//! [`ServerMetrics`]: crate::ServerMetrics

use crate::service::{RequestKind, Service};
use lcl_paths::classifier::obs::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Every metric family shares this prefix.
const PREFIX: &str = "lcl";

/// The request-kind label values, protocol order then `invalid` — the same
/// iteration order every per-kind family uses.
fn kinds() -> impl Iterator<Item = (Option<RequestKind>, &'static str)> {
    RequestKind::ALL
        .iter()
        .map(|&k| (Some(k), k.wire_name()))
        .chain(std::iter::once((None, "invalid")))
}

/// One exposition document under construction.
struct Expo {
    out: String,
}

impl Expo {
    fn header(&mut self, name: &str, metric_type: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {PREFIX}_{name} {help}");
        let _ = writeln!(self.out, "# TYPE {PREFIX}_{name} {metric_type}");
    }

    fn sample(&mut self, name: &str, labels: &str, value: u64) {
        let _ = writeln!(self.out, "{PREFIX}_{name}{labels} {value}");
    }

    /// A whole histogram family body for one label set: cumulative `le`
    /// buckets (only the occupied ones, plus the mandatory `+Inf`), then
    /// `_sum` and `_count`. `labels` is the rendered non-`le` label set
    /// (e.g. `kind="solve"`), empty for an unlabeled family.
    fn histogram(&mut self, name: &str, labels: &str, snapshot: &HistogramSnapshot) {
        let mut cumulative = 0u64;
        for (upper, count) in snapshot.nonzero_buckets() {
            cumulative += count;
            let le = if labels.is_empty() {
                format!("{{le=\"{upper}\"}}")
            } else {
                format!("{{{labels},le=\"{upper}\"}}")
            };
            self.sample(&format!("{name}_bucket"), &le, cumulative);
        }
        let inf = if labels.is_empty() {
            "{le=\"+Inf\"}".to_string()
        } else {
            format!("{{{labels},le=\"+Inf\"}}")
        };
        self.sample(&format!("{name}_bucket"), &inf, snapshot.count);
        let plain = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        self.sample(&format!("{name}_sum"), &plain, snapshot.sum);
        self.sample(&format!("{name}_count"), &plain, snapshot.count);
    }
}

/// Renders the full metrics exposition document for one service. See the
/// module docs for the format and stability guarantees.
pub fn render_exposition(service: &Service) -> String {
    let metrics = service.metrics();
    let engine = service.engine();
    let mut expo = Expo {
        out: String::with_capacity(8 * 1024),
    };

    expo.header(
        "build_info",
        "gauge",
        "Constant 1; the labels carry the server identity and configuration.",
    );
    expo.sample(
        "build_info",
        &format!(
            "{{backend=\"{}\",cache_shards=\"{}\",version=\"{}\",workers=\"{}\"}}",
            metrics.backend_name(),
            engine.cache_shards(),
            env!("CARGO_PKG_VERSION"),
            engine.parallelism(),
        ),
        1,
    );

    expo.header(
        "uptime_seconds",
        "gauge",
        "Wall-clock seconds since the service was constructed.",
    );
    expo.sample("uptime_seconds", "", service.uptime().as_secs());

    expo.header(
        "requests_total",
        "counter",
        "Frames handled, by request kind (invalid = never resolved to one).",
    );
    for (kind, label) in kinds() {
        expo.sample(
            "requests_total",
            &format!("{{kind=\"{label}\"}}"),
            metrics.snapshot(kind).count,
        );
    }

    expo.header(
        "request_errors_total",
        "counter",
        "Frames answered with an error reply, by request kind.",
    );
    for (kind, label) in kinds() {
        expo.sample(
            "request_errors_total",
            &format!("{{kind=\"{label}\"}}"),
            metrics.snapshot(kind).errors,
        );
    }

    expo.header(
        "shed_total",
        "counter",
        "Frames rejected at admission (load shed or quota), by request kind; \
         every shed frame is also counted in requests_total and \
         request_errors_total.",
    );
    for (kind, label) in kinds() {
        expo.sample(
            "shed_total",
            &format!("{{kind=\"{label}\"}}"),
            metrics.snapshot(kind).shed,
        );
    }

    expo.header(
        "request_latency_micros",
        "histogram",
        "End-to-end request handling latency in microseconds, by kind \
         (empty while detailed metrics are off).",
    );
    for (kind, label) in kinds() {
        expo.histogram(
            "request_latency_micros",
            &format!("kind=\"{label}\""),
            &metrics.histogram(kind),
        );
    }

    expo.header(
        "stream_first_chunk_micros",
        "histogram",
        "solve_stream time-to-first-chunk in microseconds (the kind \
         histogram has the full drain).",
    );
    expo.histogram(
        "stream_first_chunk_micros",
        "",
        &metrics.stream_first_chunk_histogram(),
    );

    expo.header(
        "pipeline_inflight",
        "gauge",
        "Pipelined requests dispatched and not yet answered.",
    );
    expo.sample("pipeline_inflight", "", metrics.pipelined_inflight());
    expo.header(
        "pipeline_peak_inflight",
        "gauge",
        "High-water mark of pipeline_inflight.",
    );
    expo.sample("pipeline_peak_inflight", "", metrics.pipelined_peak());

    expo.header("connections_open", "gauge", "Currently open connections.");
    expo.sample("connections_open", "", metrics.open_connections());
    expo.header(
        "connections_peak",
        "gauge",
        "High-water mark of connections_open.",
    );
    expo.sample("connections_peak", "", metrics.peak_connections());
    expo.header(
        "connections_accepted_total",
        "counter",
        "Connections accepted and served.",
    );
    expo.sample("connections_accepted_total", "", metrics.total_accepted());
    expo.header(
        "connections_rejected_total",
        "counter",
        "Connections closed at accept time by the --max-conns cap.",
    );
    expo.sample("connections_rejected_total", "", metrics.total_rejected());

    expo.header(
        "reactor_wakeups_total",
        "counter",
        "Event-loop returns from epoll_wait (0 on other backends).",
    );
    expo.sample("reactor_wakeups_total", "", metrics.reactor_wakeups());
    expo.header(
        "reactor_completions_total",
        "counter",
        "Worker-pool completions the reactor consumed (0 on other backends).",
    );
    expo.sample(
        "reactor_completions_total",
        "",
        metrics.reactor_completion_count(),
    );

    expo.header(
        "spliced_frames_total",
        "counter",
        "classify replies answered by splicing cached payload bytes around \
         the request id, skipping serialization and the worker pool.",
    );
    expo.sample("spliced_frames_total", "", metrics.spliced_frames());
    expo.header(
        "writev_batches_total",
        "counter",
        "Vectored reply flushes issued by the reactor (one writev per \
         sample; 0 on other backends).",
    );
    expo.sample("writev_batches_total", "", metrics.writev_batches());

    let cache = engine.cache_stats();
    expo.header(
        "cache_hits_total",
        "counter",
        "Classification lookups served from the memo cache.",
    );
    expo.sample("cache_hits_total", "", cache.hits);
    expo.header(
        "cache_fast_hits_total",
        "counter",
        "Cache hits served on the read fast lane with the LRU recency touch \
         skipped (the shard's LRU mutex was busy).",
    );
    expo.sample("cache_fast_hits_total", "", cache.fast_hits);
    expo.header(
        "cache_locked_hits_total",
        "counter",
        "Cache hits that also refreshed LRU recency under the shard mutex.",
    );
    expo.sample("cache_locked_hits_total", "", cache.locked_hits);
    expo.header(
        "cache_flight_leaders_total",
        "counter",
        "Single-flight leaders elected: cold-key classifications started.",
    );
    expo.sample("cache_flight_leaders_total", "", cache.flight_leaders);
    expo.header(
        "cache_flight_joins_total",
        "counter",
        "Requests served by parking on another request's in-flight \
         classification (stampedes absorbed).",
    );
    expo.sample("cache_flight_joins_total", "", cache.flight_joins);
    expo.header(
        "cache_misses_total",
        "counter",
        "Classification lookups that had to be computed.",
    );
    expo.sample("cache_misses_total", "", cache.misses);
    expo.header(
        "cache_bytes_hits_total",
        "counter",
        "Classify hits answered by splicing the cached reply bytes \
         (no JSON serialization).",
    );
    expo.sample("cache_bytes_hits_total", "", cache.bytes_hits);
    expo.header(
        "cache_bytes_misses_total",
        "counter",
        "Classify hits that had to render and attach the reply bytes \
         (first hit per entry).",
    );
    expo.sample("cache_bytes_misses_total", "", cache.bytes_misses);
    expo.header(
        "cache_inserts_total",
        "counter",
        "Entries ever inserted into the memo cache.",
    );
    expo.sample("cache_inserts_total", "", cache.inserts);
    expo.header(
        "cache_evictions_total",
        "counter",
        "Entries removed from the memo cache (LRU victims and clears).",
    );
    expo.sample("cache_evictions_total", "", cache.evictions);
    expo.header("cache_entries", "gauge", "Problems currently cached.");
    expo.sample("cache_entries", "", cache.entries as u64);
    expo.header(
        "cache_weight",
        "gauge",
        "Total weight of the resident cache entries.",
    );
    expo.sample("cache_weight", "", cache.weight);
    expo.header(
        "cache_peak_entries",
        "gauge",
        "Upper bound on entries ever resident at once.",
    );
    expo.sample("cache_peak_entries", "", cache.peak_entries as u64);
    expo.header(
        "cache_peak_weight",
        "gauge",
        "Upper bound on resident weight ever held at once.",
    );
    expo.sample("cache_peak_weight", "", cache.peak_weight);

    let shards = engine.cache_shard_stats();
    expo.header(
        "cache_shard_hits_total",
        "counter",
        "Memo-cache hits, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_hits_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.hits,
        );
    }
    expo.header(
        "cache_shard_fast_hits_total",
        "counter",
        "Fast-lane hits with the recency touch skipped, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_fast_hits_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.fast_hits,
        );
    }
    expo.header(
        "cache_shard_locked_hits_total",
        "counter",
        "Hits that refreshed LRU recency, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_locked_hits_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.locked_hits,
        );
    }
    expo.header(
        "cache_shard_flight_leaders_total",
        "counter",
        "Single-flight leaders elected, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_flight_leaders_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.flight_leaders,
        );
    }
    expo.header(
        "cache_shard_flight_joins_total",
        "counter",
        "Requests that joined an in-flight computation, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_flight_joins_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.flight_joins,
        );
    }
    expo.header(
        "cache_shard_misses_total",
        "counter",
        "Memo-cache misses, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_misses_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.misses,
        );
    }
    expo.header(
        "cache_shard_bytes_hits_total",
        "counter",
        "Reply-bytes splices served, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_bytes_hits_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.bytes_hits,
        );
    }
    expo.header(
        "cache_shard_bytes_misses_total",
        "counter",
        "Reply-bytes renders attached, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_bytes_misses_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.bytes_misses,
        );
    }
    expo.header(
        "cache_shard_entries",
        "gauge",
        "Resident memo-cache entries, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_entries",
            &format!("{{shard=\"{at}\"}}"),
            shard.entries as u64,
        );
    }
    expo.header(
        "cache_shard_evictions_total",
        "counter",
        "Memo-cache evictions, by shard.",
    );
    for (at, shard) in shards.iter().enumerate() {
        expo.sample(
            "cache_shard_evictions_total",
            &format!("{{shard=\"{at}\"}}"),
            shard.evictions,
        );
    }

    let pool = engine.pool_stats();
    expo.header("pool_workers", "gauge", "Long-lived worker threads.");
    expo.sample("pool_workers", "", pool.workers as u64);
    expo.header(
        "pool_queue_depth",
        "gauge",
        "Jobs submitted but not yet picked up by a worker.",
    );
    expo.sample("pool_queue_depth", "", pool.queue_depth as u64);
    expo.header(
        "pool_jobs_completed_total",
        "counter",
        "Jobs fully executed since the pool was built.",
    );
    expo.sample("pool_jobs_completed_total", "", pool.jobs_completed);

    expo.out
}

/// One parsed sample line: family-qualified name, rendered label set, value.
struct Sample<'a> {
    name: &'a str,
    labels: Vec<(&'a str, &'a str)>,
    value: f64,
}

/// Splits `name{labels} value` (labels optional); `Err` describes the flaw.
fn parse_sample(line: &str) -> Result<Sample<'_>, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("sample without a value: `{line}`"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("unparseable sample value: `{line}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("sample value out of range: `{line}`"));
    }
    let (name, labels) = match name_labels.split_once('{') {
        None => (name_labels, Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set: `{line}`"))?;
            let mut labels = Vec::new();
            for pair in body.split(',') {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label without `=`: `{line}`"))?;
                let value = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value: `{line}`"))?;
                labels.push((key, value));
            }
            (name, labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return Err(format!("invalid metric name: `{line}`"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// The state accumulated for one histogram label set (labels minus `le`).
#[derive(Default)]
struct HistogramSeries {
    /// `(le, cumulative count)` in encounter order; `le` is `f64::INFINITY`
    /// for the `+Inf` bucket.
    buckets: Vec<(f64, f64)>,
    count: Option<f64>,
}

/// Line-by-line structural validation of a metrics exposition document.
///
/// Enforces what a scraper needs to trust the document: every sample's
/// family is declared by exactly one preceding `# TYPE` with a known type,
/// `# HELP` lines name their own family, histogram samples use only the
/// `_bucket` / `_sum` / `_count` suffixes, no `(name, labels)` pair repeats,
/// and every histogram label set has strictly increasing `le` bounds with
/// nondecreasing cumulative counts, ending in a `+Inf` bucket equal to its
/// `_count`. Returns the first flaw found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    let mut seen_samples: Vec<String> = Vec::new();
    let mut histograms: BTreeMap<String, HistogramSeries> = BTreeMap::new();

    for line in text.lines() {
        if line.is_empty() {
            return Err("blank line in exposition".to_string());
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, metric_type) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed TYPE line: `{line}`"))?;
            if !matches!(metric_type, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown metric type: `{line}`"));
            }
            if types.insert(family, metric_type).is_some() {
                return Err(format!("duplicate TYPE for `{family}`"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if rest.split_once(' ').is_none() {
                return Err(format!("HELP without text: `{line}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("unknown comment line: `{line}`"));
        }

        let sample = parse_sample(line)?;
        // Resolve the sample to its declared family: exact for counters and
        // gauges, suffixed for histograms.
        let histogram_family = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            sample
                .name
                .strip_suffix(suffix)
                .filter(|family| types.get(family) == Some(&"histogram"))
                .map(|family| (family, *suffix))
        });
        let family = match histogram_family {
            Some((family, _)) => family,
            None => sample.name,
        };
        match types.get(family) {
            None => return Err(format!("sample before its TYPE: `{line}`")),
            Some(&"histogram") if histogram_family.is_none() => {
                return Err(format!("bare sample of a histogram family: `{line}`"));
            }
            Some(_) => {}
        }

        let key = format!("{}{:?}", sample.name, sample.labels);
        if seen_samples.contains(&key) {
            return Err(format!("duplicate sample: `{line}`"));
        }
        seen_samples.push(key);

        if let Some((family, suffix)) = histogram_family {
            let series_labels: Vec<&(&str, &str)> = sample
                .labels
                .iter()
                .filter(|(key, _)| *key != "le")
                .collect();
            let series = histograms
                .entry(format!("{family}{series_labels:?}"))
                .or_default();
            match suffix {
                "_bucket" => {
                    let le = sample
                        .labels
                        .iter()
                        .find(|(key, _)| *key == "le")
                        .ok_or_else(|| format!("bucket without le: `{line}`"))?
                        .1;
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse()
                            .map_err(|_| format!("unparseable le bound: `{line}`"))?
                    };
                    if let Some(&(last_bound, last_count)) = series.buckets.last() {
                        if bound <= last_bound {
                            return Err(format!("le bounds not increasing: `{line}`"));
                        }
                        if sample.value < last_count {
                            return Err(format!("bucket counts not monotone: `{line}`"));
                        }
                    }
                    series.buckets.push((bound, sample.value));
                }
                "_count" => series.count = Some(sample.value),
                _ => {}
            }
        }
    }

    if types.is_empty() {
        return Err("empty exposition".to_string());
    }
    for (key, series) in &histograms {
        let Some(&(last_bound, last_count)) = series.buckets.last() else {
            return Err(format!("histogram series without buckets: {key}"));
        };
        if last_bound != f64::INFINITY {
            return Err(format!("histogram series without +Inf bucket: {key}"));
        }
        let Some(count) = series.count else {
            return Err(format!("histogram series without _count: {key}"));
        };
        if last_count != count {
            return Err(format!(
                "+Inf bucket ({last_count}) disagrees with _count ({count}): {key}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_paths::Engine;
    use std::time::Duration;

    fn service() -> Service {
        Service::new(Engine::builder().parallelism(1).build())
    }

    /// The wall-clock-dependent line; everything else is pure counter state.
    fn strip_uptime(expo: &str) -> String {
        expo.lines()
            .filter(|line| !line.starts_with("lcl_uptime_seconds "))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn a_fresh_service_renders_a_valid_exposition() {
        let expo = render_exposition(&service());
        validate_exposition(&expo).expect("fresh exposition validates");
        assert!(expo.ends_with('\n'));
        assert!(expo.contains("# TYPE lcl_requests_total counter"), "{expo}");
        assert!(expo.contains("lcl_requests_total{kind=\"metrics\"} 0"));
        assert!(expo.contains("# TYPE lcl_request_latency_micros histogram"));
        assert!(expo.contains("lcl_build_info{backend=\"none\""));
    }

    #[test]
    fn recorded_traffic_shows_up_with_monotone_buckets() {
        let service = service();
        for micros in [3u64, 9, 70, 70, 5_000] {
            service.metrics().record(
                Some(RequestKind::Classify),
                Duration::from_micros(micros),
                micros == 9,
            );
        }
        service.metrics().record(None, Duration::ZERO, false);
        let expo = render_exposition(&service);
        validate_exposition(&expo).expect("validates");
        assert!(expo.contains("lcl_requests_total{kind=\"classify\"} 5"));
        assert!(expo.contains("lcl_request_errors_total{kind=\"classify\"} 4"));
        assert!(expo.contains("lcl_requests_total{kind=\"invalid\"} 1"));
        assert!(expo.contains("lcl_request_latency_micros_bucket{kind=\"classify\",le=\"+Inf\"} 5"));
        assert!(expo.contains("lcl_request_latency_micros_count{kind=\"classify\"} 5"));
        // The 1µs clamp: the invalid frame's zero elapsed still occupies a
        // bucket.
        assert!(expo.contains("lcl_request_latency_micros_bucket{kind=\"invalid\",le=\"+Inf\"} 1"));
    }

    #[test]
    fn the_exposition_is_a_pure_function_of_counter_state() {
        let build = || {
            let service = service();
            for micros in [10u64, 200, 9_000] {
                service.metrics().record(
                    Some(RequestKind::Solve),
                    Duration::from_micros(micros),
                    true,
                );
            }
            service
                .metrics()
                .record_stream_first_chunk(Duration::from_micros(42));
            service.metrics().set_backend("threads");
            service
        };
        let (a, b) = (build(), build());
        assert_eq!(
            strip_uptime(&render_exposition(&a)),
            strip_uptime(&render_exposition(&b)),
            "identical counter state must render to identical bytes"
        );
        // And rendering twice from the same quiesced service is stable too.
        assert_eq!(
            strip_uptime(&render_exposition(&a)),
            strip_uptime(&render_exposition(&a))
        );
    }

    #[test]
    fn the_validator_rejects_malformed_documents() {
        for (doc, why) in [
            ("", "empty"),
            ("lcl_x 1\n", "sample before TYPE"),
            (
                "# TYPE lcl_x counter\nlcl_x 1\nlcl_x 1\n",
                "duplicate sample",
            ),
            (
                "# TYPE lcl_x counter\n# TYPE lcl_x counter\n",
                "duplicate TYPE",
            ),
            ("# TYPE lcl_x summary\n", "unknown type"),
            ("# TYPE lcl_x counter\nlcl_x nope\n", "bad value"),
            (
                "# TYPE lcl_x histogram\nlcl_x_bucket{le=\"1\"} 2\nlcl_x_bucket{le=\"8\"} 1\n",
                "non-monotone buckets",
            ),
            (
                "# TYPE lcl_x histogram\nlcl_x_bucket{le=\"+Inf\"} 2\nlcl_x_count 1\n",
                "+Inf vs _count disagreement",
            ),
            (
                "# TYPE lcl_x histogram\nlcl_x_sum 3\nlcl_x_count 0\n",
                "histogram without buckets",
            ),
            ("# TYPE lcl_x histogram\nlcl_x 1\n", "bare histogram sample"),
        ] {
            assert!(validate_exposition(doc).is_err(), "{why} must be rejected");
        }
    }

    #[test]
    fn the_validator_accepts_a_well_formed_histogram() {
        let doc = "\
# HELP lcl_x latency
# TYPE lcl_x histogram
lcl_x_bucket{kind=\"a\",le=\"8\"} 1
lcl_x_bucket{kind=\"a\",le=\"64\"} 3
lcl_x_bucket{kind=\"a\",le=\"+Inf\"} 3
lcl_x_sum{kind=\"a\"} 90
lcl_x_count{kind=\"a\"} 3
lcl_x_bucket{kind=\"b\",le=\"+Inf\"} 0
lcl_x_sum{kind=\"b\"} 0
lcl_x_count{kind=\"b\"} 0
";
        validate_exposition(doc).expect("two label sets, one family");
    }
}
