//! Per-kind request counters and latency metrics of a running [`Service`].
//!
//! Every dispatched frame — including unparseable ones, which are accounted
//! under the `invalid` pseudo-kind — bumps one [`KindStats`] bucket (request
//! count, error count, cumulative and maximum latency) **and** one
//! [`LatencyHistogram`], so the `stats` reply and the `metrics` exposition
//! can report p50/p90/p99/p99.9 per kind, not just mean/max. Accounted
//! latencies are clamped to ≥ 1 µs: a frame that was handled was not free,
//! and the `invalid` histogram in particular must never hide rejected
//! frames behind zero-duration samples.
//!
//! Histogram recording (not the plain counters) is gated by the *detailed*
//! flag ([`ServerMetrics::set_detailed`]): the no-op-recorder mode the
//! throughput bench compares against to bound observability overhead.
//!
//! [`Service`]: crate::Service

use crate::service::RequestKind;
use lcl_paths::classifier::obs::{HistogramSnapshot, LatencyHistogram};
use lcl_paths::problem::json::JsonValue;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// Clamps an accounted latency to at least one microsecond: every handled
/// frame must leave a nonzero trail in its histogram.
fn accounted_micros(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros())
        .unwrap_or(u64::MAX)
        .max(1)
}

/// Lock-free counters for one request kind.
#[derive(Debug, Default)]
struct KindCounters {
    count: AtomicU64,
    errors: AtomicU64,
    /// Frames rejected at admission (load shed or quota). A shed frame is
    /// also counted in `count`/`errors` and its (sub-millisecond) handling
    /// latency lands in the histogram like any other reply — admission
    /// rejections must never be invisible in the latency accounting.
    shed: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
    histogram: LatencyHistogram,
}

impl KindCounters {
    fn record(&self, elapsed: Duration, ok: bool, detailed: bool) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = accounted_micros(elapsed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        if detailed {
            self.histogram.record(micros);
        }
    }

    fn snapshot(&self) -> KindStats {
        KindStats {
            count: self.count.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one request kind's counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct KindStats {
    /// Requests of this kind handled (successful or not).
    pub count: u64,
    /// Requests of this kind that produced an error reply.
    pub errors: u64,
    /// Requests of this kind rejected at admission (load shed or quota);
    /// every shed frame is also counted in `count` and `errors`.
    pub shed: u64,
    /// Cumulative handling latency, in microseconds.
    pub total_micros: u64,
    /// Largest single-request handling latency, in microseconds.
    pub max_micros: u64,
}

impl KindStats {
    /// Mean handling latency in microseconds (0 before any request).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-kind request counters of a running service. All methods are lock-free
/// and safe to call from any connection thread.
#[derive(Debug)]
pub struct ServerMetrics {
    classify: KindCounters,
    classify_many: KindCounters,
    solve: KindCounters,
    solve_stream: KindCounters,
    generate: KindCounters,
    stats: KindCounters,
    health: KindCounters,
    metrics: KindCounters,
    snapshot: KindCounters,
    /// Frames that never resolved to a known request kind.
    invalid: KindCounters,
    /// `solve_stream` time-to-first-chunk: request read to the first chunk
    /// frame handed to the writer. The per-kind `solve_stream` histogram is
    /// the full drain; splitting the two is what keeps streaming latency
    /// from hiding behind drain time.
    stream_first_chunk: LatencyHistogram,
    /// Whether histogram recording is on (the plain counters always are).
    detailed: AtomicBool,
    /// The serving front-end, for the `stats` reply and the exposition's
    /// `build_info`: 0 = none yet, 1 = reactor, 2 = threads, 3 = stdio.
    /// Last-started front-end wins when several share one service (the
    /// `--smoke` harness does this deliberately).
    backend: AtomicU8,
    /// Requests currently dispatched to the worker pool by pipelined
    /// connections and not yet answered (a gauge, not a counter).
    pipelined_inflight: AtomicU64,
    /// High-water mark of `pipelined_inflight` since the service started.
    pipelined_peak: AtomicU64,
    /// Currently open connections (a gauge; both backends maintain it).
    open_connections: AtomicU64,
    /// High-water mark of `open_connections` since the service started.
    peak_connections: AtomicU64,
    /// Connections accepted and served since the service started.
    total_accepted: AtomicU64,
    /// Connections closed at accept time by the `--max-conns` cap.
    total_rejected: AtomicU64,
    /// Reactor backend only: times the event loop woke from `epoll_wait`.
    reactor_wakeups: AtomicU64,
    /// Reactor backend only: completed worker-pool jobs whose eventfd
    /// notification the reactor consumed.
    reactor_completions: AtomicU64,
    /// `classify` replies answered by the zero-serialization fast lane: the
    /// cached payload bytes were spliced around the request id instead of
    /// serializing the verdict ([`crate::SplicedReply`]).
    spliced_frames: AtomicU64,
    /// Reactor backend only: successful `writev` calls that flushed
    /// connection output (each gathers up to a batch of reply segments —
    /// compare with `reactor_wakeups` for the coalescing ratio).
    writev_batches: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            classify: KindCounters::default(),
            classify_many: KindCounters::default(),
            solve: KindCounters::default(),
            solve_stream: KindCounters::default(),
            generate: KindCounters::default(),
            stats: KindCounters::default(),
            health: KindCounters::default(),
            metrics: KindCounters::default(),
            snapshot: KindCounters::default(),
            invalid: KindCounters::default(),
            stream_first_chunk: LatencyHistogram::new(),
            detailed: AtomicBool::new(true),
            backend: AtomicU8::new(0),
            pipelined_inflight: AtomicU64::new(0),
            pipelined_peak: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            total_accepted: AtomicU64::new(0),
            total_rejected: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            reactor_completions: AtomicU64::new(0),
            spliced_frames: AtomicU64::new(0),
            writev_batches: AtomicU64::new(0),
        }
    }
}

impl ServerMetrics {
    fn counters(&self, kind: Option<RequestKind>) -> &KindCounters {
        match kind {
            Some(RequestKind::Classify) => &self.classify,
            Some(RequestKind::ClassifyMany) => &self.classify_many,
            Some(RequestKind::Solve) => &self.solve,
            Some(RequestKind::SolveStream) => &self.solve_stream,
            Some(RequestKind::Generate) => &self.generate,
            Some(RequestKind::Stats) => &self.stats,
            Some(RequestKind::Health) => &self.health,
            Some(RequestKind::Metrics) => &self.metrics,
            Some(RequestKind::Snapshot) => &self.snapshot,
            None => &self.invalid,
        }
    }

    /// Records one handled frame (`None` = unparseable / unknown kind).
    ///
    /// For requests dispatched through the pipelined path the elapsed time
    /// is measured from frame parse to reply production, so it *includes*
    /// the time the job spent queued behind the worker pool — the latency a
    /// pipelined client observes, not just the compute time.
    pub(crate) fn record(&self, kind: Option<RequestKind>, elapsed: Duration, ok: bool) {
        self.counters(kind).record(elapsed, ok, self.detailed());
    }

    /// Records one frame rejected at admission (load shed or quota denial).
    /// Callers must *also* call [`record`](Self::record) for the frame so
    /// the count/error/latency accounting stays symmetric with served
    /// frames; this only bumps the dedicated shed tally.
    pub(crate) fn record_shed(&self, kind: Option<RequestKind>) {
        self.counters(kind).shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `solve_stream` request's time-to-first-chunk (request read
    /// to the first chunk frame leaving the handler).
    pub(crate) fn record_stream_first_chunk(&self, elapsed: Duration) {
        if self.detailed() {
            self.stream_first_chunk.record(accounted_micros(elapsed));
        }
    }

    /// Turns histogram recording on or off. Off is the no-op-recorder mode
    /// the throughput bench compares against; the plain count/error/mean/max
    /// counters keep working either way. On by default.
    pub fn set_detailed(&self, detailed: bool) {
        self.detailed.store(detailed, Ordering::Relaxed);
    }

    /// Whether histogram recording (and per-request tracing) is on.
    pub fn detailed(&self) -> bool {
        self.detailed.load(Ordering::Relaxed)
    }

    /// Registers the serving front-end by name (`reactor`, `threads`,
    /// `stdio`); the last started front-end wins when several share one
    /// service.
    pub fn set_backend(&self, name: &str) {
        let code = match name {
            "reactor" => 1,
            "threads" => 2,
            "stdio" => 3,
            _ => 0,
        };
        self.backend.store(code, Ordering::Relaxed);
    }

    /// The registered serving front-end (`none` before any registered).
    pub fn backend_name(&self) -> &'static str {
        match self.backend.load(Ordering::Relaxed) {
            1 => "reactor",
            2 => "threads",
            3 => "stdio",
            _ => "none",
        }
    }

    /// Accounts one request entering the pipelined in-flight window,
    /// updating the high-water mark.
    pub(crate) fn pipeline_enter(&self) {
        let now = self.pipelined_inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.pipelined_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Accounts one pipelined request leaving the window (its reply was
    /// produced — successfully or not).
    pub(crate) fn pipeline_exit(&self) {
        self.pipelined_inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accounts one accepted connection entering service, updating the
    /// open-connection gauge and its high-water mark.
    pub(crate) fn connection_opened(&self) {
        self.total_accepted.fetch_add(1, Ordering::Relaxed);
        let now = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    /// Accounts one connection leaving service (EOF, error or shutdown).
    pub(crate) fn connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accounts one connection closed at accept time by the `--max-conns`
    /// cap.
    pub(crate) fn connection_rejected(&self) {
        self.total_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one return from the reactor's `epoll_wait`.
    pub(crate) fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts `n` job-completion notifications consumed by the reactor.
    pub(crate) fn reactor_completions(&self, n: u64) {
        self.reactor_completions.fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts one `classify` reply answered by the zero-serialization
    /// fast lane (cached payload bytes spliced around the request id).
    pub(crate) fn record_spliced_frame(&self) {
        self.spliced_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one successful vectored write flushing connection output on
    /// the reactor backend.
    pub(crate) fn record_writev_batch(&self) {
        self.writev_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// The largest number of simultaneously open connections observed since
    /// the service started.
    pub fn peak_connections(&self) -> u64 {
        self.peak_connections.load(Ordering::Relaxed)
    }

    /// Connections accepted and served since the service started (rejected
    /// ones are counted separately).
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted.load(Ordering::Relaxed)
    }

    /// Connections closed at accept time by the `--max-conns` cap.
    pub fn total_rejected(&self) -> u64 {
        self.total_rejected.load(Ordering::Relaxed)
    }

    /// Requests currently dispatched by pipelined connections and not yet
    /// answered.
    pub fn pipelined_inflight(&self) -> u64 {
        self.pipelined_inflight.load(Ordering::Relaxed)
    }

    /// The largest number of simultaneously in-flight pipelined requests
    /// observed since the service started.
    pub fn pipelined_peak(&self) -> u64 {
        self.pipelined_peak.load(Ordering::Relaxed)
    }

    /// Times the reactor's event loop woke from `epoll_wait` (0 on other
    /// backends).
    pub fn reactor_wakeups(&self) -> u64 {
        self.reactor_wakeups.load(Ordering::Relaxed)
    }

    /// Completed worker-pool jobs whose eventfd notification the reactor
    /// consumed (0 on other backends).
    pub fn reactor_completion_count(&self) -> u64 {
        self.reactor_completions.load(Ordering::Relaxed)
    }

    /// `classify` replies answered by the zero-serialization fast lane.
    pub fn spliced_frames(&self) -> u64 {
        self.spliced_frames.load(Ordering::Relaxed)
    }

    /// Successful vectored writes flushing connection output (0 on
    /// non-reactor backends).
    pub fn writev_batches(&self) -> u64 {
        self.writev_batches.load(Ordering::Relaxed)
    }

    /// Snapshot of one kind's counters (`None` = the `invalid` pseudo-kind).
    pub fn snapshot(&self, kind: Option<RequestKind>) -> KindStats {
        self.counters(kind).snapshot()
    }

    /// Snapshot of one kind's latency histogram (`None` = the `invalid`
    /// pseudo-kind). Empty while detailed metrics are off.
    pub fn histogram(&self, kind: Option<RequestKind>) -> HistogramSnapshot {
        self.counters(kind).histogram.snapshot()
    }

    /// Snapshot of the `solve_stream` time-to-first-chunk histogram (the
    /// per-kind `solve_stream` histogram is the full drain).
    pub fn stream_first_chunk_histogram(&self) -> HistogramSnapshot {
        self.stream_first_chunk.snapshot()
    }

    /// Total number of frames handled, across all kinds (including invalid
    /// ones).
    pub fn requests_served(&self) -> u64 {
        RequestKind::ALL
            .iter()
            .map(|&k| self.snapshot(Some(k)).count)
            .sum::<u64>()
            + self.snapshot(None).count
    }

    /// Serializes all counters for the `stats` response payload. Per-kind
    /// quantiles come from the latency histograms and are upper-bound
    /// estimates with ≤ 12.5% relative error (0 while detailed metrics are
    /// off).
    pub fn to_json(&self) -> JsonValue {
        let kind_json = |kind: Option<RequestKind>| {
            let stats = self.snapshot(kind);
            let histogram = self.histogram(kind);
            JsonValue::object([
                ("count", JsonValue::Int(stats.count as i64)),
                ("errors", JsonValue::Int(stats.errors as i64)),
                ("shed", JsonValue::Int(stats.shed as i64)),
                ("total_micros", JsonValue::Int(stats.total_micros as i64)),
                ("max_micros", JsonValue::Int(stats.max_micros as i64)),
                ("mean_micros", JsonValue::Int(stats.mean_micros() as i64)),
                (
                    "p50_micros",
                    JsonValue::Int(histogram.quantile(0.50) as i64),
                ),
                (
                    "p90_micros",
                    JsonValue::Int(histogram.quantile(0.90) as i64),
                ),
                (
                    "p99_micros",
                    JsonValue::Int(histogram.quantile(0.99) as i64),
                ),
                (
                    "p999_micros",
                    JsonValue::Int(histogram.quantile(0.999) as i64),
                ),
            ])
        };
        let first_chunk = self.stream_first_chunk_histogram();
        JsonValue::object([
            (
                "requests_served",
                JsonValue::Int(self.requests_served() as i64),
            ),
            (
                "pipeline",
                JsonValue::object([
                    ("inflight", JsonValue::Int(self.pipelined_inflight() as i64)),
                    (
                        "peak_inflight",
                        JsonValue::Int(self.pipelined_peak() as i64),
                    ),
                ]),
            ),
            (
                "connections",
                JsonValue::object([
                    ("open", JsonValue::Int(self.open_connections() as i64)),
                    ("peak", JsonValue::Int(self.peak_connections() as i64)),
                    ("accepted", JsonValue::Int(self.total_accepted() as i64)),
                    ("rejected", JsonValue::Int(self.total_rejected() as i64)),
                ]),
            ),
            (
                "reactor",
                JsonValue::object([
                    ("wakeups", JsonValue::Int(self.reactor_wakeups() as i64)),
                    (
                        "completions",
                        JsonValue::Int(self.reactor_completion_count() as i64),
                    ),
                ]),
            ),
            (
                "spliced_frames",
                JsonValue::Int(self.spliced_frames() as i64),
            ),
            (
                "writev_batches",
                JsonValue::Int(self.writev_batches() as i64),
            ),
            (
                "stream_first_chunk",
                JsonValue::object([
                    ("count", JsonValue::Int(first_chunk.count as i64)),
                    ("mean_micros", JsonValue::Int(first_chunk.mean() as i64)),
                    ("max_micros", JsonValue::Int(first_chunk.max as i64)),
                    (
                        "p50_micros",
                        JsonValue::Int(first_chunk.quantile(0.50) as i64),
                    ),
                    (
                        "p99_micros",
                        JsonValue::Int(first_chunk.quantile(0.99) as i64),
                    ),
                ]),
            ),
            (
                "kinds",
                JsonValue::object([
                    ("classify", kind_json(Some(RequestKind::Classify))),
                    ("classify_many", kind_json(Some(RequestKind::ClassifyMany))),
                    ("solve", kind_json(Some(RequestKind::Solve))),
                    ("solve_stream", kind_json(Some(RequestKind::SolveStream))),
                    ("generate", kind_json(Some(RequestKind::Generate))),
                    ("stats", kind_json(Some(RequestKind::Stats))),
                    ("health", kind_json(Some(RequestKind::Health))),
                    ("metrics", kind_json(Some(RequestKind::Metrics))),
                    ("snapshot", kind_json(Some(RequestKind::Snapshot))),
                    ("invalid", kind_json(None)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let metrics = ServerMetrics::default();
        metrics.record(Some(RequestKind::Classify), Duration::from_micros(10), true);
        metrics.record(
            Some(RequestKind::Classify),
            Duration::from_micros(30),
            false,
        );
        metrics.record(None, Duration::from_micros(5), false);

        let classify = metrics.snapshot(Some(RequestKind::Classify));
        assert_eq!(classify.count, 2);
        assert_eq!(classify.errors, 1);
        assert_eq!(classify.total_micros, 40);
        assert_eq!(classify.max_micros, 30);
        assert_eq!(classify.mean_micros(), 20);

        assert_eq!(metrics.snapshot(Some(RequestKind::Solve)).count, 0);
        assert_eq!(metrics.snapshot(None).errors, 1);
        assert_eq!(metrics.requests_served(), 3);

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"requests_served\":3"), "{json}");
        assert!(json.contains("\"invalid\""), "{json}");
        assert!(json.contains("\"metrics\""), "{json}");
        assert!(json.contains("\"p99_micros\""), "{json}");
    }

    #[test]
    fn shed_frames_keep_latency_accounting_symmetric() {
        let metrics = ServerMetrics::default();
        // A shed frame records through both channels, like the dispatch
        // path does: the regular record() plus the shed tally.
        metrics.record(Some(RequestKind::Solve), Duration::from_micros(7), false);
        metrics.record_shed(Some(RequestKind::Solve));
        metrics.record(Some(RequestKind::Solve), Duration::from_micros(90), true);

        let solve = metrics.snapshot(Some(RequestKind::Solve));
        assert_eq!(solve.count, 2);
        assert_eq!(solve.errors, 1);
        assert_eq!(solve.shed, 1);
        let histogram = metrics.histogram(Some(RequestKind::Solve));
        assert_eq!(
            histogram.count, solve.count,
            "shed frames must land in the histogram too"
        );
        assert_eq!(metrics.snapshot(Some(RequestKind::Classify)).shed, 0);

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"shed\":1"), "{json}");
        assert!(json.contains("\"shed\":0"), "{json}");
    }

    #[test]
    fn histograms_mirror_the_counters_and_report_quantiles() {
        let metrics = ServerMetrics::default();
        for micros in [10u64, 20, 30, 40, 1000] {
            metrics.record(
                Some(RequestKind::Solve),
                Duration::from_micros(micros),
                true,
            );
        }
        let stats = metrics.snapshot(Some(RequestKind::Solve));
        let histogram = metrics.histogram(Some(RequestKind::Solve));
        assert_eq!(histogram.count, stats.count);
        assert_eq!(histogram.sum, stats.total_micros);
        assert_eq!(histogram.max, stats.max_micros);
        assert!(histogram.quantile(0.5) >= 20 && histogram.quantile(0.5) <= 40);
        assert_eq!(histogram.quantile(1.0), 1000);
    }

    #[test]
    fn accounted_latency_is_never_zero() {
        let metrics = ServerMetrics::default();
        metrics.record(None, Duration::ZERO, false);
        let invalid = metrics.snapshot(None);
        assert_eq!(invalid.count, 1);
        assert_eq!(invalid.total_micros, 1, "zero elapsed clamps to 1µs");
        assert_eq!(invalid.max_micros, 1);
        let histogram = metrics.histogram(None);
        assert_eq!(histogram.count, 1);
        assert_eq!(histogram.sum, 1);
    }

    #[test]
    fn detailed_off_skips_histograms_but_keeps_counters() {
        let metrics = ServerMetrics::default();
        assert!(metrics.detailed(), "detailed is the default");
        metrics.set_detailed(false);
        metrics.record(Some(RequestKind::Classify), Duration::from_micros(50), true);
        metrics.record_stream_first_chunk(Duration::from_micros(5));
        assert_eq!(metrics.snapshot(Some(RequestKind::Classify)).count, 1);
        assert_eq!(metrics.histogram(Some(RequestKind::Classify)).count, 0);
        assert_eq!(metrics.stream_first_chunk_histogram().count, 0);
        metrics.set_detailed(true);
        metrics.record_stream_first_chunk(Duration::from_micros(5));
        assert_eq!(metrics.stream_first_chunk_histogram().count, 1);
    }

    #[test]
    fn backend_registration_is_last_wins() {
        let metrics = ServerMetrics::default();
        assert_eq!(metrics.backend_name(), "none");
        metrics.set_backend("reactor");
        assert_eq!(metrics.backend_name(), "reactor");
        metrics.set_backend("threads");
        assert_eq!(metrics.backend_name(), "threads");
        metrics.set_backend("stdio");
        assert_eq!(metrics.backend_name(), "stdio");
        metrics.set_backend("bogus");
        assert_eq!(metrics.backend_name(), "none");
    }

    #[test]
    fn connection_gauges_track_open_peak_accepted_rejected() {
        let metrics = ServerMetrics::default();
        metrics.connection_opened();
        metrics.connection_opened();
        metrics.connection_opened();
        assert_eq!(metrics.open_connections(), 3);
        assert_eq!(metrics.peak_connections(), 3);
        assert_eq!(metrics.total_accepted(), 3);
        metrics.connection_closed();
        metrics.connection_closed();
        assert_eq!(metrics.open_connections(), 1);
        assert_eq!(metrics.peak_connections(), 3, "peak is a high-water mark");
        metrics.connection_rejected();
        assert_eq!(metrics.total_rejected(), 1);
        assert_eq!(
            metrics.total_accepted(),
            3,
            "rejected connections are not accepted ones"
        );

        metrics.reactor_wakeup();
        metrics.reactor_completions(5);
        assert_eq!(metrics.reactor_wakeups(), 1);
        assert_eq!(metrics.reactor_completion_count(), 5);

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"connections\""), "{json}");
        assert!(json.contains("\"peak\":3"), "{json}");
        assert!(json.contains("\"rejected\":1"), "{json}");
        assert!(json.contains("\"reactor\""), "{json}");
        assert!(json.contains("\"completions\":5"), "{json}");
    }

    #[test]
    fn pipeline_gauges_track_inflight_and_peak() {
        let metrics = ServerMetrics::default();
        assert_eq!(metrics.pipelined_inflight(), 0);
        metrics.pipeline_enter();
        metrics.pipeline_enter();
        metrics.pipeline_enter();
        assert_eq!(metrics.pipelined_inflight(), 3);
        assert_eq!(metrics.pipelined_peak(), 3);
        metrics.pipeline_exit();
        metrics.pipeline_exit();
        assert_eq!(metrics.pipelined_inflight(), 1);
        assert_eq!(metrics.pipelined_peak(), 3, "peak is a high-water mark");
        metrics.pipeline_enter();
        assert_eq!(metrics.pipelined_peak(), 3, "returning below peak keeps it");

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"pipeline\""), "{json}");
        assert!(json.contains("\"peak_inflight\":3"), "{json}");
    }
}
