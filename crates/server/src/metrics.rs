//! Per-kind request counters and latency metrics of a running [`Service`].
//!
//! Every dispatched frame — including unparseable ones, which are accounted
//! under the `invalid` pseudo-kind — bumps one [`KindStats`] bucket: request
//! count, error count, cumulative and maximum latency. The `stats` request
//! kind surfaces a snapshot of these counters next to the engine's cache and
//! pool statistics.
//!
//! [`Service`]: crate::Service

use crate::service::RequestKind;
use lcl_paths::problem::json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters for one request kind.
#[derive(Debug, Default)]
struct KindCounters {
    count: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl KindCounters {
    fn record(&self, elapsed: Duration, ok: bool) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn snapshot(&self) -> KindStats {
        KindStats {
            count: self.count.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one request kind's counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct KindStats {
    /// Requests of this kind handled (successful or not).
    pub count: u64,
    /// Requests of this kind that produced an error reply.
    pub errors: u64,
    /// Cumulative handling latency, in microseconds.
    pub total_micros: u64,
    /// Largest single-request handling latency, in microseconds.
    pub max_micros: u64,
}

impl KindStats {
    /// Mean handling latency in microseconds (0 before any request).
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-kind request counters of a running service. All methods are lock-free
/// and safe to call from any connection thread.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    classify: KindCounters,
    classify_many: KindCounters,
    solve: KindCounters,
    solve_stream: KindCounters,
    generate: KindCounters,
    stats: KindCounters,
    health: KindCounters,
    /// Frames that never resolved to a known request kind.
    invalid: KindCounters,
    /// Requests currently dispatched to the worker pool by pipelined
    /// connections and not yet answered (a gauge, not a counter).
    pipelined_inflight: AtomicU64,
    /// High-water mark of `pipelined_inflight` since the service started.
    pipelined_peak: AtomicU64,
    /// Currently open connections (a gauge; both backends maintain it).
    open_connections: AtomicU64,
    /// High-water mark of `open_connections` since the service started.
    peak_connections: AtomicU64,
    /// Connections accepted and served since the service started.
    total_accepted: AtomicU64,
    /// Connections closed at accept time by the `--max-conns` cap.
    total_rejected: AtomicU64,
    /// Reactor backend only: times the event loop woke from `epoll_wait`.
    reactor_wakeups: AtomicU64,
    /// Reactor backend only: completed worker-pool jobs whose eventfd
    /// notification the reactor consumed.
    reactor_completions: AtomicU64,
}

impl ServerMetrics {
    fn counters(&self, kind: Option<RequestKind>) -> &KindCounters {
        match kind {
            Some(RequestKind::Classify) => &self.classify,
            Some(RequestKind::ClassifyMany) => &self.classify_many,
            Some(RequestKind::Solve) => &self.solve,
            Some(RequestKind::SolveStream) => &self.solve_stream,
            Some(RequestKind::Generate) => &self.generate,
            Some(RequestKind::Stats) => &self.stats,
            Some(RequestKind::Health) => &self.health,
            None => &self.invalid,
        }
    }

    /// Records one handled frame (`None` = unparseable / unknown kind).
    ///
    /// For requests dispatched through the pipelined path the elapsed time
    /// is measured from frame parse to reply production, so it *includes*
    /// the time the job spent queued behind the worker pool — the latency a
    /// pipelined client observes, not just the compute time.
    pub(crate) fn record(&self, kind: Option<RequestKind>, elapsed: Duration, ok: bool) {
        self.counters(kind).record(elapsed, ok);
    }

    /// Accounts one request entering the pipelined in-flight window,
    /// updating the high-water mark.
    pub(crate) fn pipeline_enter(&self) {
        let now = self.pipelined_inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.pipelined_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Accounts one pipelined request leaving the window (its reply was
    /// produced — successfully or not).
    pub(crate) fn pipeline_exit(&self) {
        self.pipelined_inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accounts one accepted connection entering service, updating the
    /// open-connection gauge and its high-water mark.
    pub(crate) fn connection_opened(&self) {
        self.total_accepted.fetch_add(1, Ordering::Relaxed);
        let now = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    /// Accounts one connection leaving service (EOF, error or shutdown).
    pub(crate) fn connection_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accounts one connection closed at accept time by the `--max-conns`
    /// cap.
    pub(crate) fn connection_rejected(&self) {
        self.total_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one return from the reactor's `epoll_wait`.
    pub(crate) fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts `n` job-completion notifications consumed by the reactor.
    pub(crate) fn reactor_completions(&self, n: u64) {
        self.reactor_completions.fetch_add(n, Ordering::Relaxed);
    }

    /// Currently open connections.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// The largest number of simultaneously open connections observed since
    /// the service started.
    pub fn peak_connections(&self) -> u64 {
        self.peak_connections.load(Ordering::Relaxed)
    }

    /// Connections accepted and served since the service started (rejected
    /// ones are counted separately).
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted.load(Ordering::Relaxed)
    }

    /// Connections closed at accept time by the `--max-conns` cap.
    pub fn total_rejected(&self) -> u64 {
        self.total_rejected.load(Ordering::Relaxed)
    }

    /// Requests currently dispatched by pipelined connections and not yet
    /// answered.
    pub fn pipelined_inflight(&self) -> u64 {
        self.pipelined_inflight.load(Ordering::Relaxed)
    }

    /// The largest number of simultaneously in-flight pipelined requests
    /// observed since the service started.
    pub fn pipelined_peak(&self) -> u64 {
        self.pipelined_peak.load(Ordering::Relaxed)
    }

    /// Snapshot of one kind's counters (`None` = the `invalid` pseudo-kind).
    pub fn snapshot(&self, kind: Option<RequestKind>) -> KindStats {
        self.counters(kind).snapshot()
    }

    /// Total number of frames handled, across all kinds (including invalid
    /// ones).
    pub fn requests_served(&self) -> u64 {
        RequestKind::ALL
            .iter()
            .map(|&k| self.snapshot(Some(k)).count)
            .sum::<u64>()
            + self.snapshot(None).count
    }

    /// Serializes all counters for the `stats` response payload.
    pub fn to_json(&self) -> JsonValue {
        let kind_json = |stats: KindStats| {
            JsonValue::object([
                ("count", JsonValue::Int(stats.count as i64)),
                ("errors", JsonValue::Int(stats.errors as i64)),
                ("total_micros", JsonValue::Int(stats.total_micros as i64)),
                ("max_micros", JsonValue::Int(stats.max_micros as i64)),
                ("mean_micros", JsonValue::Int(stats.mean_micros() as i64)),
            ])
        };
        JsonValue::object([
            (
                "requests_served",
                JsonValue::Int(self.requests_served() as i64),
            ),
            (
                "pipeline",
                JsonValue::object([
                    ("inflight", JsonValue::Int(self.pipelined_inflight() as i64)),
                    (
                        "peak_inflight",
                        JsonValue::Int(self.pipelined_peak() as i64),
                    ),
                ]),
            ),
            (
                "connections",
                JsonValue::object([
                    ("open", JsonValue::Int(self.open_connections() as i64)),
                    ("peak", JsonValue::Int(self.peak_connections() as i64)),
                    ("accepted", JsonValue::Int(self.total_accepted() as i64)),
                    ("rejected", JsonValue::Int(self.total_rejected() as i64)),
                ]),
            ),
            (
                "reactor",
                JsonValue::object([
                    (
                        "wakeups",
                        JsonValue::Int(self.reactor_wakeups.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "completions",
                        JsonValue::Int(self.reactor_completions.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "kinds",
                JsonValue::object([
                    (
                        "classify",
                        kind_json(self.snapshot(Some(RequestKind::Classify))),
                    ),
                    (
                        "classify_many",
                        kind_json(self.snapshot(Some(RequestKind::ClassifyMany))),
                    ),
                    ("solve", kind_json(self.snapshot(Some(RequestKind::Solve)))),
                    (
                        "solve_stream",
                        kind_json(self.snapshot(Some(RequestKind::SolveStream))),
                    ),
                    (
                        "generate",
                        kind_json(self.snapshot(Some(RequestKind::Generate))),
                    ),
                    ("stats", kind_json(self.snapshot(Some(RequestKind::Stats)))),
                    (
                        "health",
                        kind_json(self.snapshot(Some(RequestKind::Health))),
                    ),
                    ("invalid", kind_json(self.snapshot(None))),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_kind() {
        let metrics = ServerMetrics::default();
        metrics.record(Some(RequestKind::Classify), Duration::from_micros(10), true);
        metrics.record(
            Some(RequestKind::Classify),
            Duration::from_micros(30),
            false,
        );
        metrics.record(None, Duration::from_micros(5), false);

        let classify = metrics.snapshot(Some(RequestKind::Classify));
        assert_eq!(classify.count, 2);
        assert_eq!(classify.errors, 1);
        assert_eq!(classify.total_micros, 40);
        assert_eq!(classify.max_micros, 30);
        assert_eq!(classify.mean_micros(), 20);

        assert_eq!(metrics.snapshot(Some(RequestKind::Solve)).count, 0);
        assert_eq!(metrics.snapshot(None).errors, 1);
        assert_eq!(metrics.requests_served(), 3);

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"requests_served\":3"), "{json}");
        assert!(json.contains("\"invalid\""), "{json}");
    }

    #[test]
    fn connection_gauges_track_open_peak_accepted_rejected() {
        let metrics = ServerMetrics::default();
        metrics.connection_opened();
        metrics.connection_opened();
        metrics.connection_opened();
        assert_eq!(metrics.open_connections(), 3);
        assert_eq!(metrics.peak_connections(), 3);
        assert_eq!(metrics.total_accepted(), 3);
        metrics.connection_closed();
        metrics.connection_closed();
        assert_eq!(metrics.open_connections(), 1);
        assert_eq!(metrics.peak_connections(), 3, "peak is a high-water mark");
        metrics.connection_rejected();
        assert_eq!(metrics.total_rejected(), 1);
        assert_eq!(
            metrics.total_accepted(),
            3,
            "rejected connections are not accepted ones"
        );

        metrics.reactor_wakeup();
        metrics.reactor_completions(5);

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"connections\""), "{json}");
        assert!(json.contains("\"peak\":3"), "{json}");
        assert!(json.contains("\"rejected\":1"), "{json}");
        assert!(json.contains("\"reactor\""), "{json}");
        assert!(json.contains("\"completions\":5"), "{json}");
    }

    #[test]
    fn pipeline_gauges_track_inflight_and_peak() {
        let metrics = ServerMetrics::default();
        assert_eq!(metrics.pipelined_inflight(), 0);
        metrics.pipeline_enter();
        metrics.pipeline_enter();
        metrics.pipeline_enter();
        assert_eq!(metrics.pipelined_inflight(), 3);
        assert_eq!(metrics.pipelined_peak(), 3);
        metrics.pipeline_exit();
        metrics.pipeline_exit();
        assert_eq!(metrics.pipelined_inflight(), 1);
        assert_eq!(metrics.pipelined_peak(), 3, "peak is a high-water mark");
        metrics.pipeline_enter();
        assert_eq!(metrics.pipelined_peak(), 3, "returning below peak keeps it");

        let json = metrics.to_json().to_json_string();
        assert!(json.contains("\"pipeline\""), "{json}");
        assert!(json.contains("\"peak_inflight\":3"), "{json}");
    }
}
