//! Bounded NDJSON frame reading and writing.
//!
//! Both the TCP connection handler and the stdio loop read frames through
//! [`read_frame`], which enforces [`MAX_FRAME_BYTES`]: an oversized line is
//! consumed (and discarded) up to its terminating newline, so the connection
//! stays usable and the offender gets a structured error reply instead of
//! unbounded buffering or a dropped stream. Responses leave through
//! [`write_frame`], which appends the newline terminator but deliberately
//! does **not** flush — the TCP writer thread batches several pipelined
//! replies per flush, while the stdio loop flushes after every frame.

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Hard bound on the length of one NDJSON frame (request line), in bytes.
/// Frames beyond this are rejected with a `protocol` error reply but do not
/// terminate the connection.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Outcome of reading one frame.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete line (without its newline). Invalid UTF-8 is replaced
    /// lossily — the JSON parser then rejects the frame with a structured
    /// error rather than the reader killing the connection.
    Line(String),
    /// The line exceeded the limit; it was consumed and dropped.
    Oversized {
        /// How many bytes the peer sent in the rejected frame (lower bound
        /// if the stream ended mid-frame).
        discarded: usize,
        /// When the overflow was detected — draining the rest of a multi-MB
        /// frame can take real time, and accounting it from this instant
        /// (rather than from after the drain) keeps the `invalid` latency
        /// histogram honest ([`Service::reject_oversized_at`]).
        ///
        /// [`Service::reject_oversized_at`]: crate::Service::reject_oversized_at
        started: Instant,
    },
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated frame of at most `max` bytes.
///
/// A final unterminated line at EOF is returned as a normal line (pipes often
/// omit the trailing newline). I/O errors abort the read.
pub(crate) fn read_frame(reader: &mut impl BufRead, max: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed: Option<Instant> = None;
    let mut discarded = 0usize;
    loop {
        let (done, used, eof) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                (true, 0, true)
            } else if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                if overflowed.is_some() {
                    discarded += pos;
                } else if buf.len() + pos > max {
                    overflowed = Some(Instant::now());
                    discarded = buf.len() + pos;
                } else {
                    buf.extend_from_slice(&available[..pos]);
                }
                (true, pos + 1, false)
            } else {
                if overflowed.is_some() {
                    discarded += available.len();
                } else if buf.len() + available.len() > max {
                    overflowed = Some(Instant::now());
                    discarded = buf.len() + available.len();
                    buf.clear();
                } else {
                    buf.extend_from_slice(available);
                }
                (false, available.len(), false)
            }
        };
        reader.consume(used);
        if done {
            return Ok(if let Some(started) = overflowed {
                Frame::Oversized { discarded, started }
            } else if eof && buf.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(into_string(buf))
            });
        }
    }
}

/// Bytes to text, replacing invalid UTF-8 lossily — the JSON parser then
/// rejects the frame with a structured error rather than the reader killing
/// the connection. Shared with the reactor's frame scanner.
pub(crate) fn into_string(bytes: Vec<u8>) -> String {
    String::from_utf8(bytes).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

/// Writes one response frame (`line` must not contain a newline) and its
/// `\n` terminator. Flushing is the caller's policy.
pub(crate) fn write_frame(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(input: &[u8], max: usize) -> Vec<Frame> {
        let mut reader = BufReader::with_capacity(7, input); // tiny buffer: force refills
        let mut out = Vec::new();
        loop {
            let frame = read_frame(&mut reader, max).unwrap();
            let eof = frame == Frame::Eof;
            out.push(frame);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_reports_eof() {
        let got = frames(b"one\ntwo\n", 100);
        assert_eq!(
            got,
            vec![
                Frame::Line("one".into()),
                Frame::Line("two".into()),
                Frame::Eof
            ]
        );
    }

    #[test]
    fn final_unterminated_line_is_returned() {
        let got = frames(b"tail-no-newline", 100);
        assert_eq!(got[0], Frame::Line("tail-no-newline".into()));
        assert_eq!(got[1], Frame::Eof);
    }

    #[test]
    fn oversized_line_is_discarded_but_stream_continues() {
        let mut input = vec![b'a'; 50];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = frames(&input, 10);
        assert!(
            matches!(got[0], Frame::Oversized { discarded: 50, .. }),
            "{:?}",
            got[0]
        );
        assert_eq!(got[1], Frame::Line("ok".into()));
        assert_eq!(got[2], Frame::Eof);
    }

    #[test]
    fn oversized_line_at_eof_is_reported() {
        let got = frames(&[b'x'; 40], 10);
        assert!(
            matches!(got[0], Frame::Oversized { discarded: 40, .. }),
            "{:?}",
            got[0]
        );
        assert_eq!(got[1], Frame::Eof);
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let got = frames(b"\xff\xfe{\n", 100);
        match &got[0] {
            Frame::Line(line) => assert!(line.contains('{')),
            other => panic!("expected a line, got {other:?}"),
        }
    }

    #[test]
    fn exact_max_is_allowed() {
        let mut input = vec![b'a'; 10];
        input.push(b'\n');
        let got = frames(&input, 10);
        assert_eq!(got[0], Frame::Line("a".repeat(10)));
    }
}
