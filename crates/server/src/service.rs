//! Framing-independent request dispatch: one NDJSON line in, one line out.
//!
//! [`Service`] owns the [`Engine`] and the server metrics; the TCP and stdio
//! front-ends only move frames. Dispatch never panics on wire input and never
//! kills the stream: every frame — however malformed — produces exactly one
//! [`ResponseEnvelope`], with errors mapped to structured
//! [`ErrorReply`]s whose category identifies the failing subsystem of
//! [`lcl_paths::Error`].
//!
//! Two dispatch shapes are offered:
//!
//! * [`Service::handle_line`] — **lock-step**: parse, execute, reply, all
//!   before the caller reads the next frame. Classification misses still run
//!   on the engine's persistent worker pool
//!   ([`Engine::classify_pooled`] / [`Engine::classify_many`]), but the
//!   calling thread parks until the reply exists. This is the stdio path.
//! * [`Service::dispatch_line`] — **pipelined**: the whole frame (JSON
//!   parse, execution, serialization) becomes one worker-pool job
//!   ([`Engine::dispatch`]) and a [`PendingResponse`] handle returns
//!   immediately, so a connection reader stays pure I/O and N requests
//!   from one connection progress concurrently on an N-worker pool. Jobs
//!   run their classification on the worker itself ([`Engine::classify`],
//!   [`Engine::solve_inline`]) — a worker parked on *another* pool job
//!   could deadlock a narrow pool.
//!
//! Most kinds produce exactly one reply frame. `solve_stream` additionally
//! *streams*: zero or more already-serialized chunk frames precede the
//! terminal envelope, delivered through the `emit` sink in lock-step mode
//! ([`Service::handle_line_emitting`]) or as [`StreamFrame::Chunk`]s on the
//! [`PendingResponse`] when pipelined. The per-request frame channel is a
//! small bounded queue, so a streaming job can only run a couple of frames
//! ahead of the connection writer — backpressure reaches the producing
//! worker instead of buffering a million-node labeling in memory.
//!
//! Neither shape ever spawns a thread on the request path.

use crate::admission::{AdmissionConfig, QuotaLimiter, ShedPolicy};
use crate::frame::MAX_FRAME_BYTES;
use crate::metrics::ServerMetrics;
use crate::splice::SplicedReply;
use crate::trace::{Trace, TraceSink};
use lcl_paths::classifier::{ClassifierError, ReplyLane, Verdict};
use lcl_paths::gen::GenConfig;
use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{
    ErrorReply, Instance, ProblemError, ProblemSpec, RequestEnvelope, ResponseEnvelope,
    StreamInstanceSpec, PROTOCOL_VERSION,
};
use lcl_paths::{Engine, Error};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::IpAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// The request kinds the service dispatches.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RequestKind {
    /// Classify one problem; reply with its wire verdict.
    Classify,
    /// Classify a batch on the worker pool; reply with per-item outcomes.
    ClassifyMany,
    /// Classify, synthesize and run on a concrete instance.
    Solve,
    /// Classify, synthesize and run on a *streamed* instance: the labeling
    /// goes back as ordered chunk frames, memory stays O(chunk + radius).
    SolveStream,
    /// Deterministically generate a seeded LCL problem ([`lcl_paths::gen`]).
    Generate,
    /// Cache / pool / per-kind latency counters.
    Stats,
    /// Liveness probe.
    Health,
    /// The same counters as plaintext metrics exposition (the scrape
    /// format), for pull-style collectors.
    Metrics,
    /// Write the warm-cache snapshot to the configured `--cache-snapshot`
    /// path (an operator checkpoint; the same document is written on
    /// graceful shutdown and restored at startup).
    Snapshot,
}

impl RequestKind {
    /// All request kinds, in protocol order.
    pub const ALL: [RequestKind; 9] = [
        RequestKind::Classify,
        RequestKind::ClassifyMany,
        RequestKind::Solve,
        RequestKind::SolveStream,
        RequestKind::Generate,
        RequestKind::Stats,
        RequestKind::Health,
        RequestKind::Metrics,
        RequestKind::Snapshot,
    ];

    /// The stable ASCII identifier used on the wire.
    pub fn wire_name(self) -> &'static str {
        match self {
            RequestKind::Classify => "classify",
            RequestKind::ClassifyMany => "classify_many",
            RequestKind::Solve => "solve",
            RequestKind::SolveStream => "solve_stream",
            RequestKind::Generate => "generate",
            RequestKind::Stats => "stats",
            RequestKind::Health => "health",
            RequestKind::Metrics => "metrics",
            RequestKind::Snapshot => "snapshot",
        }
    }

    /// Parses a wire identifier produced by [`RequestKind::wire_name`].
    pub fn from_wire_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.wire_name() == name)
    }

    /// Whether this kind does engine compute work and is therefore subject
    /// to admission control. The control kinds (`stats`, `health`,
    /// `metrics`, `snapshot`) are always admitted: an operator must be able
    /// to observe — and checkpoint — an overloaded server.
    pub fn is_compute(self) -> bool {
        !matches!(
            self,
            RequestKind::Stats | RequestKind::Health | RequestKind::Metrics | RequestKind::Snapshot
        )
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Maps a unified error to its structured wire reply; the category names the
/// subsystem that failed.
pub fn error_reply(error: &Error) -> ErrorReply {
    let category = match error {
        Error::Problem(_) => "problem",
        Error::Semigroup(_) => "semigroup",
        Error::Sim(_) => "simulator",
        Error::Lba(_) => "lba",
        Error::Classifier(_) => "classifier",
        Error::Gen(_) => "gen",
        _ => "internal",
    };
    ErrorReply::new(category, error.to_string())
}

fn protocol_error(id: Option<i64>, message: String) -> ResponseEnvelope {
    ResponseEnvelope::error(id, "invalid", ErrorReply::new("protocol", message))
}

/// Where a request body executes, which decides how classification work is
/// placed on the engine.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ExecContext {
    /// On the dispatching thread (lock-step [`Service::handle_line`]):
    /// classification misses are handed to the worker pool and awaited.
    Caller,
    /// On a pool worker (a job submitted by [`Service::dispatch_line`]):
    /// classification runs on this thread — parking a worker on another
    /// pool job could deadlock a narrow pool.
    PoolWorker,
}

/// One frame of a pipelined reply stream, as delivered by
/// [`PendingResponse::try_frame`] / [`PendingResponse::wait_frame`].
///
/// Every kind terminates with exactly one [`StreamFrame::Final`]; only
/// `solve_stream` precedes it with [`StreamFrame::Chunk`]s. Both carry the
/// frame already serialized (without its newline terminator), in strict
/// protocol order.
#[derive(Debug)]
pub enum StreamFrame {
    /// An intermediate chunk frame — zero or more per request, always
    /// before the terminal envelope.
    Chunk(String),
    /// The terminal reply envelope — exactly one per request, always last.
    Final(String),
    /// A terminal `classify` reply served from the engine's reply-bytes
    /// cache: the payload bytes are shared with the cache entry and the
    /// request id is spliced in at write time. Wire-equivalent to a
    /// [`StreamFrame::Final`] carrying
    /// [`SplicedReply::to_frame_string`].
    Spliced(SplicedReply),
}

/// Producer-side depth of the per-request frame channel: a streaming job
/// can run at most this many serialized frames ahead of the connection
/// writer before its `emit` blocks. This is the in-process half of
/// `solve_stream` backpressure — the socket's flow control is the other —
/// and what keeps a million-node labeling from ever being resident at once.
const STREAM_CHANNEL_DEPTH: usize = 2;

/// The in-flight result of [`Service::dispatch_line`]: a handle on one
/// request whose parse + execution + serialization is running as a
/// worker-pool job. The connection writer resolves these **in request
/// order** ([`PendingResponse::wait_frame`]), which is what turns
/// out-of-order pool completion into the protocol's in-order reply
/// guarantee.
#[derive(Debug)]
pub struct PendingResponse {
    /// Best-effort salvaged request id, used only for the synthesized reply
    /// when the job dies without delivering one.
    id: Option<i64>,
    /// Best-effort salvaged request kind (`invalid` when unrecognizable),
    /// for the same synthesized reply.
    kind: String,
    /// Delivers the serialized reply frames, terminal last.
    rx: mpsc::Receiver<StreamFrame>,
    /// The request's stage trace (when detailed metrics are on). The
    /// connection writer takes it to stamp the write stage after the
    /// terminal frame reaches the socket; an untaken trace finalizes on
    /// drop, so a dying connection still records its partial stages.
    trace: Option<Arc<Trace>>,
}

impl PendingResponse {
    /// Blocks until the next frame is available and returns it.
    ///
    /// A job that died (panicked) on its worker dropped the sending half;
    /// that is observed here and answered with a synthesized structured
    /// `internal` error as the terminal frame, so every dispatched frame
    /// still yields exactly one terminal reply. Callers stop consuming at
    /// [`StreamFrame::Final`].
    pub fn wait_frame(&mut self) -> StreamFrame {
        match self.rx.recv() {
            Ok(frame) => frame,
            Err(_) => StreamFrame::Final(self.synthesize_dropped()),
        }
    }

    /// Non-blocking probe: the next frame if one is already available (or
    /// the job already died — then the synthesized terminal error), `None`
    /// while the job is still running. A connection writer checks this
    /// before parking in [`PendingResponse::wait_frame`], so replies it has
    /// already buffered can be flushed to the peer instead of stalling
    /// behind a slow job.
    pub fn try_frame(&mut self) -> Option<StreamFrame> {
        match self.rx.try_recv() {
            Ok(frame) => Some(frame),
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(StreamFrame::Final(self.synthesize_dropped()))
            }
            Err(mpsc::TryRecvError::Empty) => None,
        }
    }

    /// Blocks until the **terminal** reply frame and returns it, discarding
    /// any intermediate chunk frames. Convenience for embedders and tests
    /// that only care about the final envelope; connection writers must use
    /// [`PendingResponse::wait_frame`] / [`PendingResponse::try_frame`] so
    /// chunks reach the peer.
    pub fn wait(mut self) -> String {
        loop {
            match self.wait_frame() {
                StreamFrame::Final(line) => return line,
                StreamFrame::Spliced(spliced) => return spliced.to_frame_string(),
                StreamFrame::Chunk(_) => {}
            }
        }
    }

    /// Takes the request's stage trace, transferring the duty (and the
    /// right) to stamp the write stage to the caller. `None` when detailed
    /// metrics are off or the trace was already taken.
    pub(crate) fn take_trace(&mut self) -> Option<Arc<Trace>> {
        self.trace.take()
    }

    /// The reply for a job whose sender disconnected without a value.
    fn synthesize_dropped(&self) -> String {
        ResponseEnvelope::error(
            self.id,
            self.kind.clone(),
            ErrorReply::new(
                "internal",
                "request job dropped its reply (the job panicked); retry the request",
            ),
        )
        .into_json_string()
    }
}

/// Best-effort scan for the frame's `"id":<int>` field without a JSON
/// parse. Only used to label the synthesized reply after a job panic, so a
/// wrong match on pathological input (the literal `"id":` inside a string
/// value) costs nothing but a mislabeled error frame.
fn salvage_id(line: &str) -> Option<i64> {
    let rest = line[line.find("\"id\":")? + 5..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Best-effort scan for `"kind":"…"`; `invalid` when unrecognizable (the
/// same pseudo-kind unparseable frames report).
fn salvage_kind(line: &str) -> String {
    line.find("\"kind\":\"")
        .and_then(|at| {
            let rest = &line[at + 8..];
            rest.find('"').map(|end| rest[..end].to_string())
        })
        .unwrap_or_else(|| "invalid".to_string())
}

/// What one cache-snapshot write put on disk.
struct SnapshotWrite {
    entries: usize,
    bytes: usize,
}

/// Decrements the pipelined-in-flight gauge even if the job panics.
struct PipelineGuard<'a>(&'a ServerMetrics);

impl Drop for PipelineGuard<'_> {
    fn drop(&mut self) {
        self.0.pipeline_exit();
    }
}

/// Default ceiling on a serialized `solve_stream` chunk frame
/// (`--max-chunk-bytes`): 256 KiB keeps roughly 32k labels per frame while
/// staying well under [`MAX_FRAME_BYTES`].
pub const DEFAULT_MAX_CHUNK_BYTES: usize = 256 * 1024;

/// The framing-independent request handler: an [`Engine`] plus metrics.
///
/// Shared across connection threads behind an `Arc`; all methods take
/// `&self`.
#[derive(Debug)]
pub struct Service {
    engine: Engine,
    metrics: ServerMetrics,
    trace: Arc<TraceSink>,
    started: Instant,
    max_chunk_bytes: usize,
    /// Gates the zero-serialization classify fast lane
    /// ([`Service::splice_line`]). On by default; the `server_throughput`
    /// bench toggles it live to measure the lane's effect.
    reply_splice: AtomicBool,
    /// Learned canonical classify lines: raw payload text → the structural
    /// key / name / hash that text parsed to, so a repeated hot line skips
    /// JSON parsing and problem normalization entirely and goes straight to
    /// the memo cache ([`Engine::cached_reply_for_key`]). Bounded by
    /// [`HOT_LINES_CAP`]; stale mappings (evicted entries) are dropped on
    /// probe.
    hot_lines: Mutex<HashMap<Box<str>, HotLine>>,
    /// Load-shedding thresholds (`--shed-p99-micros` / `--shed-queue-depth`);
    /// `None` when shedding is disabled.
    shed: Option<ShedPolicy>,
    /// Per-peer token buckets (`--quota-rps` / `--quota-burst`); `None`
    /// when quotas are disabled.
    quota: Option<QuotaLimiter>,
    /// Where the warm-cache snapshot is written (`--cache-snapshot`);
    /// `None` disables the `snapshot` kind and the startup restore.
    snapshot_path: Option<PathBuf>,
}

/// One learned canonical classify line: what its payload text parsed to.
/// The `Arc`s make the memo value cheap to clone out of the lock.
#[derive(Clone, Debug)]
struct HotLine {
    key: Arc<[u8]>,
    name: Arc<str>,
    hash: u64,
}

/// Bound on remembered canonical lines. At capacity the memo is simply
/// cleared — crude, but hot workloads re-learn a line on its next parse,
/// and the bound keeps a high-cardinality (cache-busting) workload from
/// accumulating request text indefinitely.
const HOT_LINES_CAP: usize = 1024;

/// Splits a *canonical* classify frame — exactly the bytes
/// [`RequestEnvelope::to_json_string`] produces: sorted keys, no
/// whitespace, protocol version 1 — into its id and raw payload text.
/// Anything else (reordered keys, spaces, a non-canonical id spelling like
/// `007` or `+7` that the strict JSON parser would reject) returns `None`
/// and takes the parse path; the raw lane must never accept a frame the
/// parser would refuse.
fn canonical_classify_parts(line: &str) -> Option<(i64, &str)> {
    const HEAD: &str = "{\"id\":";
    const MID: &str = ",\"kind\":\"classify\",\"payload\":";
    const TAIL: &str = ",\"v\":1}";
    let rest = line.strip_prefix(HEAD)?;
    let (id_text, rest) = rest.split_at(rest.find(MID)?);
    let id: i64 = id_text.parse().ok()?;
    if id.to_string() != id_text {
        return None;
    }
    Some((id, rest.strip_prefix(MID)?.strip_suffix(TAIL)?))
}

impl Service {
    /// Wraps an engine for serving.
    pub fn new(engine: Engine) -> Self {
        Service {
            engine,
            metrics: ServerMetrics::default(),
            trace: Arc::new(TraceSink::default()),
            started: Instant::now(),
            max_chunk_bytes: DEFAULT_MAX_CHUNK_BYTES,
            reply_splice: AtomicBool::new(true),
            hot_lines: Mutex::new(HashMap::new()),
            shed: None,
            quota: None,
            snapshot_path: None,
        }
    }

    /// Configures admission control (load shedding and per-client quotas)
    /// from the CLI thresholds; an all-zero config leaves both disabled.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.shed = ShedPolicy::new(&config);
        self.quota = QuotaLimiter::new(&config);
        self
    }

    /// Sets the warm-cache snapshot path: enables the `snapshot` request
    /// kind, the startup restore ([`Service::restore_cache_snapshot`]) and
    /// the shutdown write ([`Service::write_cache_snapshot`]).
    pub fn with_cache_snapshot_path(mut self, path: PathBuf) -> Self {
        self.snapshot_path = Some(path);
        self
    }

    /// The configured warm-cache snapshot path, if any.
    pub fn cache_snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// Replaces the trace sink (ring capacity, slow-line emitter). Intended
    /// for construction time — traces already in flight keep the old sink.
    pub fn with_trace_sink(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Sets the ceiling on one serialized `solve_stream` chunk frame.
    /// Clamped to `1024 ..= MAX_FRAME_BYTES` so a chunk always fits a
    /// protocol frame and always carries at least one label.
    pub fn with_max_chunk_bytes(mut self, bytes: usize) -> Self {
        self.max_chunk_bytes = bytes.clamp(1024, MAX_FRAME_BYTES);
        self
    }

    /// The ceiling on one serialized `solve_stream` chunk frame.
    pub fn max_chunk_bytes(&self) -> usize {
        self.max_chunk_bytes
    }

    /// Builder form of [`Service::set_reply_splice`].
    pub fn with_reply_splice(self, enabled: bool) -> Self {
        self.set_reply_splice(enabled);
        self
    }

    /// Enables or disables the zero-serialization classify fast lane at
    /// runtime. Replies are byte-identical either way — the toggle only
    /// decides whether a hot hit re-serializes its verdict per frame — so
    /// flipping it mid-stream is safe; the `server_throughput` bench does
    /// exactly that to isolate the lane's cost.
    pub fn set_reply_splice(&self, enabled: bool) {
        self.reply_splice.store(enabled, Ordering::Relaxed);
    }

    /// Whether the zero-serialization classify fast lane is on.
    pub fn reply_splice(&self) -> bool {
        self.reply_splice.load(Ordering::Relaxed)
    }

    /// How many labels fit one chunk under [`Self::max_chunk_bytes`]: a
    /// label costs at most 6 wire bytes (`u16` digits plus comma), budgeted
    /// at 8 after reserving envelope overhead, so the serialized frame
    /// stays under the configured ceiling.
    fn chunk_nodes(&self) -> usize {
        (self.max_chunk_bytes.saturating_sub(128) / 8).max(1)
    }

    /// The engine behind this service.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The per-kind request counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The sink finished request traces land in (the recent-trace ring and
    /// the `--trace-slow-micros` log threshold live here).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Wall-clock time since the service was constructed.
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// A stage trace for one request clocked from `started`, or `None` when
    /// detailed metrics are off (tracing shares the histogram gate: both
    /// are the observability work the no-op recorder mode elides).
    fn new_trace(&self, started: Instant, id: Option<i64>) -> Option<Arc<Trace>> {
        self.metrics
            .detailed()
            .then(|| Arc::new(Trace::new(Arc::clone(&self.trace), started, id)))
    }

    /// The admission decision for one frame: `Some(reply)` when the frame
    /// must be rejected (per-peer quota exhausted, or the server is
    /// shedding load), `None` when it may dispatch. Only compute kinds are
    /// ever denied; the quota is consulted first so one greedy client is
    /// rejected individually before the global shed signals even matter.
    /// `peer` is the client address the quota buckets key on — `None`
    /// (stdio, embedders) shares one sentinel bucket.
    fn admission_denial(&self, kind: RequestKind, peer: Option<IpAddr>) -> Option<ErrorReply> {
        if !kind.is_compute() || (self.shed.is_none() && self.quota.is_none()) {
            return None;
        }
        if let Some(quota) = &self.quota {
            let peer = peer.unwrap_or_else(QuotaLimiter::sentinel_peer);
            if let Err(denial) = quota.admit(peer, Instant::now()) {
                return Some(ErrorReply::overloaded(
                    denial.message,
                    denial.retry_after_millis,
                ));
            }
        }
        if let Some(shed) = &self.shed {
            let pool = self.engine.pool_stats();
            // The per-kind p99 comes from the detailed-metrics histogram;
            // with histograms off it reads 0 and the signal is inert.
            let p99 = self.metrics.histogram(Some(kind)).quantile(0.99);
            if let Some(denial) = shed.evaluate(pool.queue_depth, pool.workers, p99) {
                return Some(ErrorReply::overloaded(
                    denial.message,
                    denial.retry_after_millis,
                ));
            }
        }
        None
    }

    /// Accounts one admission rejection symmetrically with served frames:
    /// the regular per-kind count/error/latency record **plus** the shed
    /// tally, so `shed_total` and the latency histograms always agree.
    fn record_shed(&self, kind: RequestKind, started: Instant) {
        self.metrics.record_shed(Some(kind));
        self.metrics.record(Some(kind), started.elapsed(), false);
    }

    /// Handles one request frame in lock-step, returning exactly one
    /// response envelope. Never panics on wire input.
    ///
    /// Intermediate `solve_stream` chunk frames have nowhere to go in this
    /// shape and are discarded; the terminal summary is still computed and
    /// returned. Front-ends that can forward chunks use
    /// [`Service::handle_line_emitting`].
    pub fn handle_line(&self, line: &str) -> ResponseEnvelope {
        self.handle_line_emitting(line, &mut |_| true)
    }

    /// [`Service::handle_line`] with a chunk sink: `emit` receives each
    /// serialized intermediate frame (in order, all before the terminal
    /// envelope is returned) and reports whether the peer is still there —
    /// returning `false` aborts the stream with a structured error. This is
    /// how the stdio front-end serves `solve_stream`.
    pub fn handle_line_emitting(
        &self,
        line: &str,
        emit: &mut dyn FnMut(String) -> bool,
    ) -> ResponseEnvelope {
        // The trace drops here untaken: lock-step embedders that cannot
        // observe the write use the compute-side stages only.
        self.handle_line_traced(line, emit).0
    }

    /// [`Service::handle_line_emitting`] that also hands back the request's
    /// stage trace, so a lock-step front-end (stdio) can stamp the
    /// serialize and write stages it alone observes. The trace finalizes
    /// into the sink when dropped, stamped or not.
    pub(crate) fn handle_line_traced(
        &self,
        line: &str,
        emit: &mut dyn FnMut(String) -> bool,
    ) -> (ResponseEnvelope, Option<Arc<Trace>>) {
        let started = Instant::now();
        let trace = self.new_trace(started, None);
        let response = match self.parse(line) {
            Err(response) => {
                if let Some(trace) = &trace {
                    trace.mark_parsed(None, None);
                }
                self.metrics.record(None, started.elapsed(), false);
                response
            }
            Ok((kind, envelope)) => {
                if let Some(trace) = &trace {
                    trace.mark_parsed(Some(kind), Some(envelope.id));
                }
                // Admission runs after the parse here (lock-step framing
                // has no salvage shortcut) but still before any engine
                // work; stdio peers share the sentinel quota bucket.
                if let Some(reply) = self.admission_denial(kind, None) {
                    self.record_shed(kind, started);
                    ResponseEnvelope::error(Some(envelope.id), kind.wire_name(), reply)
                } else {
                    self.finish(
                        kind,
                        &envelope,
                        started,
                        ExecContext::Caller,
                        emit,
                        trace.as_deref(),
                    )
                }
            }
        };
        if let Some(trace) = &trace {
            trace.mark_computed(response.is_ok());
        }
        (response, trace)
    }

    /// Handles one request frame for a *pipelined* connection: the whole
    /// frame — JSON parse, execution, serialization — becomes one
    /// worker-pool job, and the handle comes back without blocking, so a
    /// connection reader stays pure I/O and keeps pulling frames while
    /// every stage of earlier requests runs on the pool. With N workers, N
    /// requests from one connection parse and classify concurrently.
    ///
    /// The caller must resolve the returned handles in dispatch order
    /// ([`PendingResponse::wait`]) to uphold the protocol's per-connection
    /// reply-ordering guarantee.
    pub fn dispatch_line(self: &Arc<Self>, line: String) -> PendingResponse {
        self.dispatch_line_notify(line, || {})
    }

    /// [`Service::dispatch_line`] with the client's peer address, which
    /// keys the per-client quota buckets. This is the thread backend's
    /// dispatch entry point.
    pub fn dispatch_line_from(
        self: &Arc<Self>,
        line: String,
        peer: Option<IpAddr>,
    ) -> PendingResponse {
        self.dispatch_line_notify_from(line, peer, || {})
    }

    /// [`Service::dispatch_line`] with a frame hook: `notify` runs on the
    /// worker every time a new frame is observable on the returned handle —
    /// a chunk was emitted, the frame was answered, or the job died and
    /// [`PendingResponse::try_frame`] will synthesize its error. This is the
    /// reactor backend's wakeup path: instead of a writer thread parked per
    /// connection, `notify` signals the reactor's eventfd
    /// ([`Engine::dispatch_notify`]).
    ///
    /// Frames travel over a bounded channel (depth 2): a
    /// streaming job whose consumer stops draining parks its pool worker
    /// until the writer catches up or the connection is dropped (the drop
    /// closes the channel, which aborts the stream). The per-connection
    /// in-flight window bounds how many workers one slow peer can park.
    pub fn dispatch_line_notify<N>(self: &Arc<Self>, line: String, notify: N) -> PendingResponse
    where
        N: Fn() + Send + Sync + 'static,
    {
        self.dispatch_line_notify_from(line, None, notify)
    }

    /// [`Service::dispatch_line_notify`] with the client's peer address for
    /// the per-client quota buckets (the reactor backend's entry point).
    pub fn dispatch_line_notify_from<N>(
        self: &Arc<Self>,
        line: String,
        peer: Option<IpAddr>,
        notify: N,
    ) -> PendingResponse
    where
        N: Fn() + Send + Sync + 'static,
    {
        let started = Instant::now();
        // The zero-serialization fast lane: a classify whose verdict is
        // already cached resolves right here on the calling thread — no
        // pool job, no pipeline-window slot. The frame is pre-sent on the
        // channel (depth ≥ 1, so the send cannot block) and therefore
        // observable before the handle returns — no notify needed.
        if let Some((id, frame, trace)) = self.splice_line(&line, started) {
            let (tx, rx) = mpsc::sync_channel::<StreamFrame>(STREAM_CHANNEL_DEPTH);
            let _ = tx.send(frame);
            return PendingResponse {
                id: Some(id),
                kind: RequestKind::Classify.wire_name().to_string(),
                rx,
                trace,
            };
        }
        let id = salvage_id(&line);
        let kind = salvage_kind(&line);
        // Admission runs on the salvaged kind, before the frame takes a
        // pool job or a pipeline-window slot: a shed reply is resolved
        // right here on the calling thread and only occupies the
        // connection's ordered-reply slot, so it stays fast — and the
        // server stays observable — however deep the pool backlog is.
        // (A frame whose kind cannot be salvaged dispatches normally; its
        // reply is a parse error, not engine work worth shedding.)
        if let Some(salvaged) = RequestKind::from_wire_name(&kind) {
            if let Some(reply) = self.admission_denial(salvaged, peer) {
                let frame = ResponseEnvelope::error(id, kind.clone(), reply).into_json_string();
                self.record_shed(salvaged, started);
                let (tx, rx) = mpsc::sync_channel::<StreamFrame>(STREAM_CHANNEL_DEPTH);
                let _ = tx.send(StreamFrame::Final(frame));
                return PendingResponse {
                    id,
                    kind,
                    rx,
                    trace: None,
                };
            }
        }
        let service = Arc::clone(self);
        // The trace is shared three ways: the job stamps queue → serialize,
        // the connection writer (via the PendingResponse) stamps the write,
        // and whichever Arc drops last finalizes it if nobody did.
        let trace = self.new_trace(started, id);
        let job_trace = trace.clone();
        self.metrics.pipeline_enter();
        let (tx, rx) = mpsc::sync_channel::<StreamFrame>(STREAM_CHANNEL_DEPTH);
        let notify = Arc::new(notify);
        let dropped_notify = Arc::clone(&notify);
        // The reply travels frame by frame through `tx`, not through the
        // engine's own result channel (dropped here; the pool tolerates
        // that). The engine-side hook still fires after the job ends — even
        // by panic — which is what makes the synthesized error observable.
        let _ = self.engine.dispatch_notify(
            move || {
                let guard = PipelineGuard(service.metrics());
                if let Some(trace) = &job_trace {
                    trace.mark_queue();
                }
                let response = match service.parse(&line) {
                    Err(response) => {
                        if let Some(trace) = &job_trace {
                            trace.mark_parsed(None, None);
                        }
                        service.metrics.record(None, started.elapsed(), false);
                        response
                    }
                    Ok((kind, envelope)) => {
                        if let Some(trace) = &job_trace {
                            trace.mark_parsed(Some(kind), Some(envelope.id));
                        }
                        let mut emit = |frame: String| {
                            let delivered = tx.send(StreamFrame::Chunk(frame)).is_ok();
                            notify();
                            delivered
                        };
                        service.finish(
                            kind,
                            &envelope,
                            started,
                            ExecContext::PoolWorker,
                            &mut emit,
                            job_trace.as_deref(),
                        )
                    }
                };
                if let Some(trace) = &job_trace {
                    trace.mark_computed(response.is_ok());
                }
                let line = response.into_json_string();
                if let Some(trace) = &job_trace {
                    trace.mark_serialized();
                }
                // The gauge must read as drained before the terminal frame
                // is observable (a panic unwinds the guard instead).
                drop(guard);
                let _ = tx.send(StreamFrame::Final(line));
            },
            move || dropped_notify(),
        );
        PendingResponse {
            id,
            kind,
            rx,
            trace,
        }
    }

    /// Executes a parsed request and wraps the outcome in its response
    /// envelope, recording latency metrics (from `started`, so deferred
    /// requests account their pool-queue wait too).
    fn finish(
        &self,
        kind: RequestKind,
        envelope: &RequestEnvelope,
        started: Instant,
        ctx: ExecContext,
        emit: &mut dyn FnMut(String) -> bool,
        trace: Option<&Trace>,
    ) -> ResponseEnvelope {
        let result = self.run(kind, envelope, started, ctx, emit, trace);
        self.respond(kind, envelope.id, started, result)
    }

    /// Wraps a request outcome in its response envelope and records the
    /// latency metrics.
    fn respond(
        &self,
        kind: RequestKind,
        id: i64,
        started: Instant,
        result: Result<JsonValue, Error>,
    ) -> ResponseEnvelope {
        let response = match result {
            Ok(payload) => ResponseEnvelope::ok(id, kind.wire_name(), payload),
            Err(e) => ResponseEnvelope::error(Some(id), kind.wire_name(), error_reply(&e)),
        };
        self.metrics
            .record(Some(kind), started.elapsed(), response.is_ok());
        response
    }

    /// [`Service::handle_line`], serialized to one NDJSON frame (without the
    /// trailing newline).
    pub fn handle_line_string(&self, line: &str) -> String {
        self.handle_line(line).into_json_string()
    }

    /// Builds (and accounts) the structured reply for a frame that exceeded
    /// [`MAX_FRAME_BYTES`]; the framing layer has already discarded the line.
    ///
    /// Front-ends that know when the oversized frame *started* arriving
    /// should use [`Service::reject_oversized_at`] so the accounted latency
    /// covers the discard work; this form accounts the (clamped-to-1µs)
    /// reply construction only.
    pub fn reject_oversized(&self, discarded: usize) -> ResponseEnvelope {
        self.reject_oversized_at(discarded, Instant::now())
    }

    /// [`Service::reject_oversized`] clocked from `started` — the instant
    /// the frame began arriving — so draining and discarding a multi-MB
    /// frame lands in the `invalid` histogram as the real elapsed time
    /// instead of a near-zero reply-construction blip.
    pub fn reject_oversized_at(&self, discarded: usize, started: Instant) -> ResponseEnvelope {
        let response = protocol_error(
            None,
            format!("frame exceeds {MAX_FRAME_BYTES} bytes ({discarded} bytes discarded)"),
        );
        self.metrics.record(None, started.elapsed(), false);
        response
    }

    /// Parses one frame up to (but not including) payload interpretation.
    /// Any failure comes back as the ready-to-send error response.
    fn parse(&self, line: &str) -> Result<(RequestKind, RequestEnvelope), ResponseEnvelope> {
        let value = JsonValue::parse(line)
            .map_err(|e| protocol_error(None, format!("malformed request frame: {e}")))?;
        // Salvage the request id if the envelope itself is broken, so the
        // client can still correlate the error.
        let salvaged_id = value.get("id").and_then(|v| v.as_int().ok());
        let envelope = RequestEnvelope::from_json(&value)
            .map_err(|e| protocol_error(salvaged_id, e.to_string()))?;
        let Some(kind) = RequestKind::from_wire_name(&envelope.kind) else {
            return Err(ResponseEnvelope::error(
                Some(envelope.id),
                envelope.kind.clone(),
                ErrorReply::new(
                    "protocol",
                    format!(
                        "unknown request kind `{}` (expected classify, classify_many, \
                         solve, solve_stream, generate, stats, health, metrics or snapshot)",
                        envelope.kind
                    ),
                ),
            ));
        };
        Ok((kind, envelope))
    }

    fn run(
        &self,
        kind: RequestKind,
        envelope: &RequestEnvelope,
        started: Instant,
        ctx: ExecContext,
        emit: &mut dyn FnMut(String) -> bool,
        trace: Option<&Trace>,
    ) -> Result<JsonValue, Error> {
        let payload = &envelope.payload;
        match kind {
            RequestKind::Classify => self.classify(payload, ctx, trace),
            RequestKind::ClassifyMany => self.classify_many(payload, ctx),
            RequestKind::Solve => self.solve(payload, ctx, trace),
            RequestKind::SolveStream => {
                self.solve_stream(envelope.id, payload, started, ctx, emit, trace)
            }
            RequestKind::Generate => self.generate(payload),
            RequestKind::Stats => self.stats(),
            RequestKind::Health => self.health(),
            RequestKind::Metrics => self.metrics_exposition(),
            RequestKind::Snapshot => self.snapshot(),
        }
    }

    fn parse_problem(payload: &JsonValue) -> Result<lcl_paths::problem::NormalizedLcl, Error> {
        let spec = payload.require("problem").map_err(ProblemError::from)?;
        Ok(ProblemSpec::from_json(spec)?.to_problem()?)
    }

    /// The `{"verdict": …}` response payload shared by every classify path.
    fn verdict_payload(
        problem: &lcl_paths::problem::NormalizedLcl,
        classification: &lcl_paths::classifier::Classification,
    ) -> JsonValue {
        JsonValue::object([("verdict", Verdict::new(problem, classification).to_json())])
    }

    /// The zero-serialization classify fast lane: answers a `classify`
    /// frame whose classification is already cached entirely on the calling
    /// thread — no pool round-trip and, when the reply bytes are attached
    /// ([`Engine::cached_reply`]), no serialization either, just an
    /// id-splice ([`StreamFrame::Spliced`]). A *canonical* line whose
    /// payload text has been served before skips even the request parse:
    /// the learned structural key ([`HotLine`]) re-probes the memo cache
    /// directly, making the hot path id-parse + cache probe + memcpy.
    /// Returns `None` whenever the lane does not apply — the splice toggle
    /// is off, the frame is not a well-formed `classify`, or the problem is
    /// not cached — and the caller falls back to the full dispatch path,
    /// which also owns every error reply (errors are never cached, so they
    /// are never spliced).
    ///
    /// On `Some`, the request is fully accounted (latency metrics, stage
    /// trace): the returned id, terminal frame and trace are ready for the
    /// connection's ordered-reply machinery, with the write stage left for
    /// the caller to stamp.
    pub(crate) fn splice_line(
        &self,
        line: &str,
        started: Instant,
    ) -> Option<(i64, StreamFrame, Option<Arc<Trace>>)> {
        // Cheap scan before the parse: the lane only serves `classify`
        // (the closing quote keeps `classify_many` out).
        if !self.reply_splice() || !line.contains("\"kind\":\"classify\"") {
            return None;
        }
        // The raw-text lane inside the fast lane: a canonical line whose
        // payload text was already served once skips JSON parsing and
        // problem normalization — the learned structural key re-probes the
        // memo cache directly, and the hot reply is an id-splice away.
        let raw_parts = canonical_classify_parts(line);
        if let Some((id, payload_text)) = raw_parts {
            let learned = self
                .hot_lines
                .lock()
                .expect("hot-lines lock")
                .get(payload_text)
                .cloned();
            if let Some(hot) = learned {
                if let Some(payload) = self.engine.cached_reply_for_key(&hot.key, &hot.name) {
                    let trace = self.new_trace(started, Some(id));
                    if let Some(trace) = &trace {
                        trace.mark_parsed(Some(RequestKind::Classify), Some(id));
                        trace.set_problem(hot.hash, Some(true));
                        trace.mark_computed(true);
                        trace.mark_serialized();
                    }
                    self.metrics.record_spliced_frame();
                    self.metrics
                        .record(Some(RequestKind::Classify), started.elapsed(), true);
                    return Some((
                        id,
                        StreamFrame::Spliced(SplicedReply::new(id, payload)),
                        trace,
                    ));
                }
                // Stale mapping: the entry was evicted or lost its bytes.
                // Forget it; the parse path below re-learns on success.
                self.hot_lines
                    .lock()
                    .expect("hot-lines lock")
                    .remove(payload_text);
            }
        }
        let (kind, envelope) = self.parse(line).ok()?;
        if kind != RequestKind::Classify {
            return None;
        }
        let problem = Self::parse_problem(&envelope.payload).ok()?;
        // Only an already-cached classification qualifies: a miss must run
        // on the pool, and the render closure only fires for a hit whose
        // reply bytes are not attached yet (then this request pays the one
        // serialization every later hit reuses).
        let lane = self.engine.cached_reply(&problem, |classification| {
            Self::verdict_payload(&problem, classification)
                .to_json_string()
                .into_bytes()
        })?;
        let trace = self.new_trace(started, Some(envelope.id));
        if let Some(trace) = &trace {
            trace.mark_parsed(Some(kind), Some(envelope.id));
            trace.set_problem(problem.canonical_hash(), Some(true));
            trace.mark_computed(true);
        }
        let frame = match lane {
            ReplyLane::Bytes(payload) => {
                // Learn the canonical line so the next identical payload
                // text skips straight to the raw-text lane above.
                if let Some((_, payload_text)) = raw_parts {
                    let mut hot = self.hot_lines.lock().expect("hot-lines lock");
                    if hot.len() >= HOT_LINES_CAP {
                        hot.clear();
                    }
                    hot.entry(payload_text.into()).or_insert_with(|| HotLine {
                        key: problem.structural_key().into(),
                        name: problem.name().into(),
                        hash: problem.canonical_hash(),
                    });
                }
                self.metrics.record_spliced_frame();
                StreamFrame::Spliced(SplicedReply::new(envelope.id, payload))
            }
            // The cached bytes were rendered for a structural twin under a
            // different problem name; serve this name a fresh serialization
            // so the reply stays byte-identical to the slow path.
            ReplyLane::Render(classification) => StreamFrame::Final(
                ResponseEnvelope::ok(
                    envelope.id,
                    kind.wire_name(),
                    Self::verdict_payload(&problem, &classification),
                )
                .into_json_string(),
            ),
        };
        if let Some(trace) = &trace {
            trace.mark_serialized();
        }
        self.metrics.record(Some(kind), started.elapsed(), true);
        Some((envelope.id, frame, trace))
    }

    fn classify(
        &self,
        payload: &JsonValue,
        ctx: ExecContext,
        trace: Option<&Trace>,
    ) -> Result<JsonValue, Error> {
        let problem = Self::parse_problem(payload)?;
        // The hit flag comes from the classify call itself
        // ([`Engine::classify_observed`]) — probing the cache separately
        // would count a phantom hit and refresh the LRU. The pooled path
        // cannot observe where its classification came from, so the trace's
        // cache attribution stays unknown there.
        let (classification, cache_hit) = match ctx {
            ExecContext::Caller => (self.engine.classify_pooled(&problem)?, None),
            ExecContext::PoolWorker => {
                let (classification, hit) = self.engine.classify_observed(&problem)?;
                (classification, Some(hit))
            }
        };
        if let Some(trace) = trace {
            trace.set_problem(problem.canonical_hash(), cache_hit);
        }
        Ok(Self::verdict_payload(&problem, &classification))
    }

    fn classify_many(&self, payload: &JsonValue, ctx: ExecContext) -> Result<JsonValue, Error> {
        let items = payload
            .require("problems")
            .and_then(|v| v.as_array())
            .map_err(ProblemError::from)?;
        // One malformed spec must not fail the batch: parse per item, batch
        // only the well-formed problems, then reassemble in input order.
        let parsed: Vec<Result<lcl_paths::problem::NormalizedLcl, Error>> = items
            .iter()
            .map(|item| Ok(ProblemSpec::from_json(item)?.to_problem()?))
            .collect();
        let problems: Vec<_> = parsed
            .iter()
            .filter_map(|p| p.as_ref().ok().cloned())
            .collect();
        // On a pool worker the batch runs sequentially on this thread (the
        // memo cache still deduplicates repeats); fanning it back out onto
        // the pool from a worker could deadlock a narrow pool, and under
        // pipelining the parallelism comes from concurrent requests instead.
        let results: Vec<Result<_, Error>> = match ctx {
            ExecContext::Caller => self
                .engine
                .classify_many(&problems)
                .into_iter()
                .map(|r| r.map_err(Error::from))
                .collect(),
            ExecContext::PoolWorker => problems
                .iter()
                .map(|p| self.engine.classify(p).map_err(Error::from))
                .collect(),
        };
        let mut classified = results.into_iter();
        let error_item = |e: &Error| {
            JsonValue::object([
                ("ok", JsonValue::Bool(false)),
                ("error", error_reply(e).to_json()),
            ])
        };
        let verdicts: Vec<JsonValue> = parsed
            .iter()
            .map(|item| match item {
                Err(e) => error_item(e),
                Ok(problem) => {
                    let result = classified.next().expect("one result per parsed problem");
                    match result {
                        Ok(classification) => JsonValue::object([
                            ("ok", JsonValue::Bool(true)),
                            ("verdict", Verdict::new(problem, &classification).to_json()),
                        ]),
                        Err(e) => error_item(&e),
                    }
                }
            })
            .collect();
        Ok(JsonValue::object([
            ("count", JsonValue::Int(verdicts.len() as i64)),
            ("verdicts", JsonValue::Array(verdicts)),
        ]))
    }

    fn solve(
        &self,
        payload: &JsonValue,
        ctx: ExecContext,
        trace: Option<&Trace>,
    ) -> Result<JsonValue, Error> {
        let problem = Self::parse_problem(payload)?;
        if let Some(trace) = trace {
            trace.set_problem(problem.canonical_hash(), None);
        }
        let instance =
            Instance::from_json(payload.require("instance").map_err(ProblemError::from)?)?;
        let solution = match ctx {
            ExecContext::Caller => self.engine.solve(&problem, &instance)?,
            ExecContext::PoolWorker => self.engine.solve_inline(&problem, &instance)?,
        };
        Ok(JsonValue::object([
            (
                "complexity",
                JsonValue::Str(solution.complexity().wire_name().to_string()),
            ),
            ("rounds", JsonValue::Int(solution.rounds() as i64)),
            (
                "labeling",
                JsonValue::object([(
                    "outputs",
                    JsonValue::int_array(
                        solution.labeling().outputs().iter().map(|l| i64::from(l.0)),
                    ),
                )]),
            ),
        ]))
    }

    /// Labels a streamed instance chunk by chunk: each slice of outputs
    /// goes out through `emit` as its own already-serialized `solve_stream`
    /// frame (`{"offset", "outputs", "seq"}`), and the returned payload is
    /// the terminal summary (`{"complexity", "done", "nodes", "rounds",
    /// "seq"}`). The instance is never materialized — memory stays
    /// O(chunk + radius) whatever `length` says ([`StreamSolution`]).
    ///
    /// [`StreamSolution`]: lcl_paths::classifier::StreamSolution
    fn solve_stream(
        &self,
        id: i64,
        payload: &JsonValue,
        started: Instant,
        ctx: ExecContext,
        emit: &mut dyn FnMut(String) -> bool,
        trace: Option<&Trace>,
    ) -> Result<JsonValue, Error> {
        let problem = Self::parse_problem(payload)?;
        if let Some(trace) = trace {
            trace.set_problem(problem.canonical_hash(), None);
        }
        let spec = StreamInstanceSpec::from_json(
            payload.require("instance").map_err(ProblemError::from)?,
        )?;
        let mut solution = match ctx {
            ExecContext::Caller => self.engine.solve_stream(&problem, &spec)?,
            ExecContext::PoolWorker => self.engine.solve_stream_inline(&problem, &spec)?,
        };
        let chunk_nodes = self.chunk_nodes();
        let mut seq = 0i64;
        let mut offset = 0i64;
        while let Some(chunk) = solution.next_chunk(chunk_nodes) {
            let outputs = chunk?;
            let frame = ResponseEnvelope::ok(
                id,
                RequestKind::SolveStream.wire_name(),
                JsonValue::object([
                    ("offset", JsonValue::Int(offset)),
                    (
                        "outputs",
                        JsonValue::int_array(outputs.iter().map(|l| i64::from(l.0))),
                    ),
                    ("seq", JsonValue::Int(seq)),
                ]),
            )
            .into_json_string();
            offset += outputs.len() as i64;
            if seq == 0 {
                // Time-to-first-chunk — from frame read (pool queue wait
                // included) to the first chunk leaving the handler. The
                // per-kind solve_stream histogram records the full drain,
                // which for a big instance is dominated by backpressure.
                self.metrics.record_stream_first_chunk(started.elapsed());
            }
            seq += 1;
            if !emit(frame) {
                return Err(Error::Classifier(ClassifierError::Internal {
                    what: "solve_stream peer went away mid-stream; labeling aborted".to_string(),
                }));
            }
        }
        Ok(JsonValue::object([
            (
                "complexity",
                JsonValue::Str(solution.complexity().wire_name().to_string()),
            ),
            ("done", JsonValue::Bool(true)),
            ("nodes", JsonValue::Int(solution.nodes() as i64)),
            ("rounds", JsonValue::Int(solution.rounds() as i64)),
            ("seq", JsonValue::Int(seq)),
        ]))
    }

    /// Deterministically generates an LCL problem from a seeded config: the
    /// reply carries the full problem spec — ready to feed straight back
    /// into `classify` or `solve` — plus its canonical hash, so both ends
    /// of a differential harness can cheaply agree on what was produced.
    fn generate(&self, payload: &JsonValue) -> Result<JsonValue, Error> {
        let config = GenConfig::from_json(payload)?;
        let problem = lcl_paths::gen::generate(&config)?;
        Ok(JsonValue::object([
            (
                "canonical_hash",
                JsonValue::Str(format!("{:016x}", problem.canonical_hash())),
            ),
            (
                "family",
                JsonValue::Str(config.family.wire_name().to_string()),
            ),
            ("problem", problem.to_spec().to_json()),
            ("seed", JsonValue::Int(config.seed as i64)),
        ]))
    }

    /// The `metrics` kind: the same counters the `stats` JSON reports, as
    /// one plaintext metrics exposition document ([`crate::expo`]) inside
    /// the reply payload. This is the transport-independent scrape path —
    /// the `--metrics-addr` HTTP listener serves the identical document.
    fn metrics_exposition(&self) -> Result<JsonValue, Error> {
        Ok(JsonValue::object([(
            "exposition",
            JsonValue::Str(crate::expo::render_exposition(self)),
        )]))
    }

    /// The `snapshot` kind: writes the warm-cache snapshot to the
    /// configured `--cache-snapshot` path and reports what was written.
    /// Always admitted (a control kind): checkpointing must work exactly
    /// when the server is overloaded and about to be restarted.
    fn snapshot(&self) -> Result<JsonValue, Error> {
        let Some(path) = &self.snapshot_path else {
            return Err(Error::Classifier(ClassifierError::Internal {
                what: "no cache snapshot path configured \
                       (start the server with --cache-snapshot PATH)"
                    .to_string(),
            }));
        };
        let write = self.write_snapshot_to(path).map_err(|e| {
            Error::Classifier(ClassifierError::Internal {
                what: format!("cache snapshot write to {} failed: {e}", path.display()),
            })
        })?;
        Ok(JsonValue::object([
            ("bytes", JsonValue::Int(write.bytes as i64)),
            ("entries", JsonValue::Int(write.entries as i64)),
            ("path", JsonValue::Str(path.display().to_string())),
        ]))
    }

    /// Serializes the engine's cache and writes it to `path` via a
    /// temp-file + rename, so a concurrent reader (or a crash mid-write)
    /// never observes a torn document.
    fn write_snapshot_to(&self, path: &Path) -> io::Result<SnapshotWrite> {
        let document = self.engine.snapshot_document();
        // Header and checksum trailer aside, one line per entry.
        let entries = document.lines().count().saturating_sub(2);
        let bytes = document.len();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &document)?;
        std::fs::rename(&tmp, path)?;
        Ok(SnapshotWrite { entries, bytes })
    }

    /// Writes the warm-cache snapshot to the configured path, returning a
    /// loggable summary; `None` when no path is configured. This is the
    /// graceful-shutdown write of `lcl-serve` (the `snapshot` request kind
    /// serves the same document on demand).
    pub fn write_cache_snapshot(&self) -> Option<io::Result<String>> {
        let path = self.snapshot_path.as_ref()?;
        Some(self.write_snapshot_to(path).map(|write| {
            format!(
                "wrote {} cache entries ({} bytes) to {}",
                write.entries,
                write.bytes,
                path.display()
            )
        }))
    }

    /// Restores the warm cache from the configured snapshot path at
    /// startup. `None` when no path is configured **or** the file does not
    /// exist yet (a fresh deployment); `Some(Err(…))` describes a corrupt,
    /// truncated or version-skewed document — the caller logs it and
    /// serves on with a cold cache, never fails.
    pub fn restore_cache_snapshot(&self) -> Option<std::result::Result<String, String>> {
        let path = self.snapshot_path.as_ref()?;
        let document = match std::fs::read_to_string(path) {
            Ok(document) => document,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                return Some(Err(format!(
                    "could not read cache snapshot {}: {e}",
                    path.display()
                )))
            }
        };
        Some(match self.engine.restore_snapshot(&document) {
            Ok(report) => Ok(format!("{report} from {}", path.display())),
            Err(e) => Err(format!("ignoring cache snapshot {}: {e}", path.display())),
        })
    }

    /// Server identity and configuration for the `stats` reply's `server`
    /// block (and the exposition's `build_info`).
    fn server_info(&self) -> [(&'static str, JsonValue); 5] {
        [
            (
                "backend",
                JsonValue::Str(self.metrics.backend_name().to_string()),
            ),
            (
                "cache_shards",
                JsonValue::Int(self.engine.cache_shards() as i64),
            ),
            (
                "uptime_seconds",
                JsonValue::Int(i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX)),
            ),
            (
                "version",
                JsonValue::Str(env!("CARGO_PKG_VERSION").to_string()),
            ),
            ("workers", JsonValue::Int(self.engine.parallelism() as i64)),
        ]
    }

    fn stats(&self) -> Result<JsonValue, Error> {
        let cache = self.engine.cache_stats();
        let pool = self.engine.pool_stats();
        let mut server = self.metrics.to_json();
        if let JsonValue::Object(fields) = &mut server {
            for (key, value) in self.server_info() {
                fields.insert(key.to_string(), value);
            }
        }
        Ok(JsonValue::object([
            (
                "cache",
                JsonValue::object([
                    ("hits", JsonValue::Int(cache.hits as i64)),
                    ("fast_hits", JsonValue::Int(cache.fast_hits as i64)),
                    ("locked_hits", JsonValue::Int(cache.locked_hits as i64)),
                    (
                        "flight_leaders",
                        JsonValue::Int(cache.flight_leaders as i64),
                    ),
                    ("flight_joins", JsonValue::Int(cache.flight_joins as i64)),
                    ("misses", JsonValue::Int(cache.misses as i64)),
                    ("bytes_hits", JsonValue::Int(cache.bytes_hits as i64)),
                    ("bytes_misses", JsonValue::Int(cache.bytes_misses as i64)),
                    ("entries", JsonValue::Int(cache.entries as i64)),
                    ("evictions", JsonValue::Int(cache.evictions as i64)),
                    ("inserts", JsonValue::Int(cache.inserts as i64)),
                    ("peak_entries", JsonValue::Int(cache.peak_entries as i64)),
                    ("weight", JsonValue::Int(cache.weight as i64)),
                    ("peak_weight", JsonValue::Int(cache.peak_weight as i64)),
                    ("shards", JsonValue::Int(cache.shards as i64)),
                    (
                        "hit_ratio",
                        JsonValue::Str(format!("{:.4}", cache.hit_ratio())),
                    ),
                    // The human-oriented summary comes straight from the
                    // CacheStats Display impl — no hand-formatting here.
                    ("summary", JsonValue::Str(cache.to_string())),
                ]),
            ),
            (
                "pool",
                JsonValue::object([
                    ("workers", JsonValue::Int(pool.workers as i64)),
                    ("queue_depth", JsonValue::Int(pool.queue_depth as i64)),
                    ("jobs_completed", JsonValue::Int(pool.jobs_completed as i64)),
                    ("summary", JsonValue::Str(pool.to_string())),
                ]),
            ),
            ("server", server),
            (
                "uptime_ms",
                JsonValue::Int(
                    i64::try_from(self.started.elapsed().as_millis()).unwrap_or(i64::MAX),
                ),
            ),
        ]))
    }

    fn health(&self) -> Result<JsonValue, Error> {
        Ok(JsonValue::object([
            ("status", JsonValue::Str("ok".to_string())),
            ("protocol", JsonValue::Int(PROTOCOL_VERSION)),
            ("workers", JsonValue::Int(self.engine.parallelism() as i64)),
            (
                "requests_served",
                JsonValue::Int(self.metrics.requests_served() as i64),
            ),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_paths::problems;

    fn service() -> Service {
        Service::new(Engine::builder().parallelism(2).build())
    }

    fn classify_line(id: i64) -> String {
        let payload = JsonValue::object([("problem", problems::coloring(3).to_spec().to_json())]);
        RequestEnvelope::new(id, "classify", payload).to_json_string()
    }

    #[test]
    fn dispatch_line_resolves_every_frame_to_one_reply() {
        let service = Arc::new(service());

        // Well-formed cheap kind.
        let health = service
            .dispatch_line(r#"{"v":1,"id":1,"kind":"health"}"#.to_string())
            .wait();
        let health = ResponseEnvelope::from_json_str(&health).expect("reply parses");
        assert_eq!(health.id, Some(1));
        assert!(health.is_ok());

        // Unparseable frames still get their structured reply through the
        // same deferred path.
        let garbage = service.dispatch_line("not json at all".to_string()).wait();
        let garbage = ResponseEnvelope::from_json_str(&garbage).expect("reply parses");
        assert_eq!(garbage.id, None);
        assert_eq!(garbage.result.unwrap_err().category, "protocol");

        // A classify runs parse + classification + serialization on the
        // pool and is byte-identical to the lock-step reply.
        let deferred = service.dispatch_line(classify_line(5)).wait();
        let parsed = ResponseEnvelope::from_json_str(&deferred).expect("reply parses");
        assert_eq!(parsed.id, Some(5), "request id echoed");
        assert!(parsed.is_ok());
        assert_eq!(
            deferred,
            service.handle_line_string(&classify_line(5)),
            "deferred and lock-step replies must serialize identically"
        );

        // The window gauge drained and recorded its high-water mark.
        assert_eq!(service.metrics().pipelined_inflight(), 0);
        assert!(service.metrics().pipelined_peak() >= 1);
    }

    #[test]
    fn dispatch_line_splices_hot_classify_hits_byte_identically() {
        let service = Arc::new(service());

        // Cold: the miss runs on the pool; nothing to splice yet.
        let cold = service.dispatch_line(classify_line(1)).wait();
        assert!(ResponseEnvelope::from_json_str(&cold).unwrap().is_ok());
        assert_eq!(service.metrics().spliced_frames(), 0);

        // First hot hit: resolved on the calling thread; this request pays
        // the one render that attaches the reply bytes (a bytes miss), and
        // its frame is already spliced.
        let mut pending = service.dispatch_line(classify_line(2));
        let spliced = match pending.wait_frame() {
            StreamFrame::Spliced(spliced) => spliced,
            other => panic!("expected a spliced frame, got {other:?}"),
        };
        assert_eq!(
            spliced.to_frame_string(),
            service.handle_line_string(&classify_line(2)),
            "spliced frame must be byte-identical to the canonical serializer"
        );
        assert_eq!(service.metrics().spliced_frames(), 1);
        assert_eq!(service.engine().cache_stats().bytes_misses, 1);

        // Second hot hit reuses the attached bytes: a bytes hit, shared
        // payload, still byte-identical modulo the spliced id.
        let again = service.dispatch_line(classify_line(-3)).wait();
        assert_eq!(again, service.handle_line_string(&classify_line(-3)));
        assert_eq!(service.metrics().spliced_frames(), 2);
        assert_eq!(service.engine().cache_stats().bytes_hits, 1);

        // The lane never takes a pipeline-window slot.
        assert_eq!(service.metrics().pipelined_inflight(), 0);

        // Toggled off, the same hot frame goes through the pool and still
        // serializes identically — the lane is invisible on the wire.
        service.set_reply_splice(false);
        let slow = service.dispatch_line(classify_line(4)).wait();
        assert_eq!(slow, service.handle_line_string(&classify_line(4)));
        assert_eq!(service.metrics().spliced_frames(), 2, "lane was off");
    }

    #[test]
    fn the_raw_lane_accepts_only_canonical_classify_frames() {
        let payload = JsonValue::object([("problem", problems::coloring(3).to_spec().to_json())]);
        let text = payload.to_json_string();
        for id in [7i64, 0, -1, i64::MAX, i64::MIN] {
            let line = RequestEnvelope::new(id, "classify", payload.clone()).to_json_string();
            let (got_id, got_text) =
                canonical_classify_parts(&line).expect("canonical frame splits");
            assert_eq!(got_id, id);
            assert_eq!(got_text, text);
        }
        // Id spellings the strict JSON parser would reject, other kinds,
        // whitespace and reordered keys must all fall to the parse path:
        // the raw lane may never outrun the parser.
        for line in [
            format!("{{\"id\":+7,\"kind\":\"classify\",\"payload\":{text},\"v\":1}}"),
            format!("{{\"id\":007,\"kind\":\"classify\",\"payload\":{text},\"v\":1}}"),
            format!("{{\"id\":-0,\"kind\":\"classify\",\"payload\":{text},\"v\":1}}"),
            format!("{{\"id\":\"7\",\"kind\":\"classify\",\"payload\":{text},\"v\":1}}"),
            format!("{{\"id\":7,\"kind\":\"classify_many\",\"payload\":{text},\"v\":1}}"),
            format!("{{\"id\":7, \"kind\":\"classify\",\"payload\":{text},\"v\":1}}"),
            format!("{{\"v\":1,\"id\":7,\"kind\":\"classify\",\"payload\":{text}}}"),
            format!("{{\"id\":7,\"kind\":\"classify\",\"payload\":{text},\"v\":2}}"),
        ] {
            assert_eq!(canonical_classify_parts(&line), None, "{line}");
        }
    }

    #[test]
    fn pending_response_synthesizes_an_error_when_the_job_dies() {
        // Build the handle by hand with a dropped sender: exactly what the
        // writer observes after a job panic.
        let (tx, rx) = mpsc::sync_channel::<StreamFrame>(STREAM_CHANNEL_DEPTH);
        drop(tx);
        let pending = PendingResponse {
            id: Some(77),
            kind: "classify".to_string(),
            rx,
            trace: None,
        };
        let reply = ResponseEnvelope::from_json_str(&pending.wait()).expect("reply parses");
        assert_eq!(
            reply.id,
            Some(77),
            "salvaged id labels the synthesized reply"
        );
        assert_eq!(reply.kind, "classify");
        let error = reply.result.unwrap_err();
        assert_eq!(error.category, "internal");
        assert!(error.message.contains("panicked"), "{}", error.message);
    }

    #[test]
    fn salvage_scans_are_best_effort_but_robust() {
        assert_eq!(salvage_id(r#"{"v":1,"id":42,"kind":"solve"}"#), Some(42));
        assert_eq!(salvage_id(r#"{"id": -7}"#), Some(-7));
        assert_eq!(salvage_id("not json"), None);
        assert_eq!(salvage_id(r#"{"id":"text"}"#), None);
        assert_eq!(salvage_kind(r#"{"kind":"classify_many"}"#), "classify_many");
        assert_eq!(salvage_kind("garbage"), "invalid");
    }

    #[test]
    fn classify_roundtrip_matches_in_process_verdict() {
        let service = service();
        let response = service.handle_line(&classify_line(7));
        assert_eq!(response.id, Some(7));
        assert_eq!(response.kind, "classify");
        let payload = response.result.expect("classification succeeds");
        let wire = payload.require("verdict").unwrap().to_json_string();
        let local = Engine::new()
            .verdict(&problems::coloring(3))
            .unwrap()
            .to_json_string();
        assert_eq!(wire, local, "wire verdict must be byte-identical");
    }

    #[test]
    fn unknown_kind_and_bad_frames_get_structured_errors() {
        let service = service();

        let garbage = service.handle_line("not json at all");
        assert!(!garbage.is_ok());
        assert_eq!(garbage.id, None);
        assert_eq!(garbage.result.unwrap_err().category, "protocol");

        let wrong_version = service.handle_line(r#"{"v":9,"id":4,"kind":"health"}"#);
        assert_eq!(wrong_version.id, Some(4), "id salvaged from bad envelope");
        assert!(!wrong_version.is_ok());

        let unknown = service.handle_line(r#"{"v":1,"id":5,"kind":"shutdown"}"#);
        assert_eq!(unknown.id, Some(5));
        let error = unknown.result.unwrap_err();
        assert_eq!(error.category, "protocol");
        assert!(error.message.contains("shutdown"), "{}", error.message);

        // Domain errors carry the failing subsystem's category.
        let bad_payload = service.handle_line(r#"{"v":1,"id":6,"kind":"classify","payload":{}}"#);
        assert_eq!(bad_payload.result.unwrap_err().category, "problem");

        // The invalid frames were accounted, and the service still works.
        assert!(service.metrics().snapshot(None).errors >= 2);
        assert!(service.handle_line(&classify_line(8)).is_ok());
    }

    #[test]
    fn stats_and_health_report_engine_state() {
        let service = service();
        assert!(service.handle_line(&classify_line(1)).is_ok());
        assert!(service.handle_line(&classify_line(2)).is_ok()); // cache hit

        let health = service.handle_line(r#"{"v":1,"id":3,"kind":"health"}"#);
        let payload = health.result.expect("health is ok");
        assert_eq!(payload.require("status").unwrap().as_str().unwrap(), "ok");
        assert_eq!(
            payload.require("protocol").unwrap().as_int().unwrap(),
            PROTOCOL_VERSION
        );

        let stats = service.handle_line(r#"{"v":1,"id":4,"kind":"stats"}"#);
        let payload = stats.result.expect("stats is ok");
        let cache = payload.require("cache").unwrap();
        assert_eq!(cache.require("hits").unwrap().as_int().unwrap(), 1);
        assert_eq!(cache.require("misses").unwrap().as_int().unwrap(), 1);
        assert_eq!(cache.require("inserts").unwrap().as_int().unwrap(), 1);
        // The single classification elected one single-flight leader; the
        // uncontended repeat was a locked (recency-refreshing) hit.
        assert_eq!(
            cache.require("flight_leaders").unwrap().as_int().unwrap(),
            1
        );
        assert_eq!(cache.require("flight_joins").unwrap().as_int().unwrap(), 0);
        assert_eq!(cache.require("locked_hits").unwrap().as_int().unwrap(), 1);
        assert_eq!(cache.require("fast_hits").unwrap().as_int().unwrap(), 0);
        assert_eq!(cache.require("peak_entries").unwrap().as_int().unwrap(), 1);
        assert_eq!(
            cache.require("shards").unwrap().as_int().unwrap(),
            service.engine().cache_shards() as i64
        );
        // The snapshot invariant the consistent per-shard read guarantees.
        assert_eq!(
            cache.require("entries").unwrap().as_int().unwrap()
                + cache.require("evictions").unwrap().as_int().unwrap(),
            cache.require("inserts").unwrap().as_int().unwrap()
        );
        let summary = cache.require("summary").unwrap().as_str().unwrap();
        assert!(summary.contains("1 hits"), "{summary}");
        let pool = payload.require("pool").unwrap();
        assert_eq!(pool.require("workers").unwrap().as_int().unwrap(), 2);
        let server = payload.require("server").unwrap();
        assert!(server.require("requests_served").unwrap().as_int().unwrap() >= 3);
    }

    #[test]
    fn solve_executes_on_the_instance() {
        let service = service();
        let payload = JsonValue::object([
            ("problem", problems::coloring(3).to_spec().to_json()),
            (
                "instance",
                Instance::from_indices(lcl_paths::problem::Topology::Cycle, &[0; 24]).to_json(),
            ),
        ]);
        let line = RequestEnvelope::new(9, "solve", payload).to_json_string();
        let response = service.handle_line(&line);
        let payload = response.result.expect("solve succeeds");
        assert_eq!(
            payload.require("complexity").unwrap().as_str().unwrap(),
            "log-star"
        );
        let outputs = payload
            .require("labeling")
            .unwrap()
            .require("outputs")
            .unwrap();
        assert_eq!(outputs.as_array().unwrap().len(), 24);
    }

    fn stream_line(id: i64, length: u64) -> String {
        let payload = JsonValue::object([
            ("problem", problems::coloring(3).to_spec().to_json()),
            (
                "instance",
                lcl_paths::problem::StreamInstanceSpec {
                    topology: lcl_paths::problem::Topology::Cycle,
                    length,
                    inputs: lcl_paths::problem::StreamInputs::Uniform { label: 0 },
                }
                .to_json(),
            ),
        ]);
        RequestEnvelope::new(id, "solve_stream", payload).to_json_string()
    }

    #[test]
    fn solve_stream_chunks_concatenate_to_the_full_labeling() {
        let service = service().with_max_chunk_bytes(1024); // 112 labels/chunk
        let mut chunks = Vec::new();
        let response = service.handle_line_emitting(&stream_line(21, 300), &mut |frame| {
            chunks.push(frame);
            true
        });
        assert_eq!(response.id, Some(21));
        let summary = response.result.expect("stream succeeds");
        assert!(summary.require("done").unwrap().as_bool().unwrap());
        assert_eq!(summary.require("nodes").unwrap().as_int().unwrap(), 300);
        assert_eq!(
            summary.require("seq").unwrap().as_int().unwrap(),
            chunks.len() as i64
        );
        assert!(chunks.len() >= 2, "300 nodes at 1 KiB must need 2+ chunks");

        // Chunks are well-formed envelopes in seq order with contiguous
        // offsets, and their labels concatenate to one valid 3-coloring.
        let mut outputs = Vec::new();
        for (i, frame) in chunks.iter().enumerate() {
            assert!(frame.len() <= 1024, "chunk frame over the ceiling");
            let envelope = ResponseEnvelope::from_json_str(frame).expect("chunk parses");
            assert_eq!(envelope.id, Some(21));
            assert_eq!(envelope.kind, "solve_stream");
            let payload = envelope.result.expect("chunk is ok");
            assert_eq!(payload.require("seq").unwrap().as_int().unwrap(), i as i64);
            assert_eq!(
                payload.require("offset").unwrap().as_int().unwrap(),
                outputs.len() as i64
            );
            for v in payload.require("outputs").unwrap().as_array().unwrap() {
                outputs.push(v.as_int().unwrap());
            }
        }
        assert_eq!(outputs.len(), 300);
        for at in 0..outputs.len() {
            assert_ne!(
                outputs[at],
                outputs[(at + 1) % outputs.len()],
                "adjacent cycle nodes share a color at {at}"
            );
        }
    }

    #[test]
    fn solve_stream_pipelined_delivers_ordered_frames() {
        let service = Arc::new(service().with_max_chunk_bytes(1024));
        let mut pending = service.dispatch_line(stream_line(22, 250));
        let mut frames = Vec::new();
        let terminal = loop {
            match pending.wait_frame() {
                StreamFrame::Chunk(frame) => frames.push(frame),
                StreamFrame::Final(line) => break line,
                StreamFrame::Spliced(spliced) => break spliced.to_frame_string(),
            }
        };
        let terminal = ResponseEnvelope::from_json_str(&terminal).expect("reply parses");
        assert!(terminal.is_ok());
        let summary = terminal.result.unwrap();
        assert_eq!(
            summary.require("seq").unwrap().as_int().unwrap(),
            frames.len() as i64
        );
        assert!(!frames.is_empty());
        for (i, frame) in frames.iter().enumerate() {
            let payload = ResponseEnvelope::from_json_str(frame)
                .expect("chunk parses")
                .result
                .expect("chunk is ok");
            assert_eq!(payload.require("seq").unwrap().as_int().unwrap(), i as i64);
        }
    }

    #[test]
    fn solve_stream_aborts_when_the_emit_sink_reports_the_peer_gone() {
        let service = service().with_max_chunk_bytes(1024);
        let mut emitted = 0;
        let response = service.handle_line_emitting(&stream_line(23, 300), &mut |_| {
            emitted += 1;
            false
        });
        assert_eq!(emitted, 1, "stream must stop at the first refusal");
        let error = response.result.unwrap_err();
        assert_eq!(error.category, "classifier");
        assert!(
            error.message.contains("peer went away"),
            "{}",
            error.message
        );
    }

    #[test]
    fn generate_replies_with_a_classifiable_problem_spec() {
        let service = service();
        let payload = JsonValue::object([
            ("seed", JsonValue::Int(7)),
            ("family", JsonValue::Str("solvable".to_string())),
        ]);
        let line = RequestEnvelope::new(31, "generate", payload).to_json_string();
        let response = service.handle_line(&line);
        assert_eq!(response.kind, "generate");
        let payload = response.result.expect("generation succeeds");
        assert_eq!(payload.require("seed").unwrap().as_int().unwrap(), 7);
        assert_eq!(
            payload.require("family").unwrap().as_str().unwrap(),
            "solvable"
        );

        // The echoed hash matches a local regeneration, and the spec feeds
        // straight back into classify.
        let config = GenConfig::new(7).family(lcl_paths::gen::Family::Solvable);
        let local = lcl_paths::gen::generate(&config).unwrap();
        assert_eq!(
            payload.require("canonical_hash").unwrap().as_str().unwrap(),
            format!("{:016x}", local.canonical_hash())
        );
        let classify = RequestEnvelope::new(
            32,
            "classify",
            JsonValue::object([("problem", payload.require("problem").unwrap().clone())]),
        )
        .to_json_string();
        assert!(service.handle_line(&classify).is_ok());

        // Config errors come back under the dedicated `gen` category.
        let bad = RequestEnvelope::new(
            33,
            "generate",
            JsonValue::object([
                ("seed", JsonValue::Int(1)),
                ("out_degree", JsonValue::Int(0)),
            ]),
        )
        .to_json_string();
        let error = service.handle_line(&bad).result.unwrap_err();
        assert_eq!(error.category, "gen");
    }

    #[test]
    fn classify_many_reports_per_item_outcomes() {
        let service = service();
        let good = problems::coloring(3).to_spec().to_json();
        let payload = JsonValue::object([(
            "problems",
            JsonValue::Array(vec![good.clone(), good.clone(), good]),
        )]);
        let line = RequestEnvelope::new(11, "classify_many", payload).to_json_string();
        let response = service.handle_line(&line);
        let payload = response.result.expect("batch succeeds");
        assert_eq!(payload.require("count").unwrap().as_int().unwrap(), 3);
        for item in payload.require("verdicts").unwrap().as_array().unwrap() {
            assert!(item.require("ok").unwrap().as_bool().unwrap());
        }
        // The three duplicates were deduplicated into one classification.
        assert_eq!(service.engine().cache_stats().misses, 1);
    }

    #[test]
    fn one_malformed_spec_does_not_fail_the_batch() {
        let service = service();
        let good = problems::coloring(3).to_spec().to_json();
        let payload = JsonValue::object([(
            "problems",
            JsonValue::Array(vec![
                good.clone(),
                JsonValue::object([("version", JsonValue::Int(1))]), // missing fields
                good,
            ]),
        )]);
        let line = RequestEnvelope::new(12, "classify_many", payload).to_json_string();
        let payload = service.handle_line(&line).result.expect("batch succeeds");
        assert_eq!(payload.require("count").unwrap().as_int().unwrap(), 3);
        let items = payload.require("verdicts").unwrap().as_array().unwrap();
        assert!(items[0].require("ok").unwrap().as_bool().unwrap());
        assert!(!items[1].require("ok").unwrap().as_bool().unwrap());
        assert_eq!(
            items[1]
                .require("error")
                .unwrap()
                .require("category")
                .unwrap()
                .as_str()
                .unwrap(),
            "problem"
        );
        assert!(items[2].require("ok").unwrap().as_bool().unwrap());
    }

    #[test]
    fn quota_denials_reject_with_the_overloaded_category() {
        let service = Arc::new(service().with_admission(AdmissionConfig {
            quota_rps: 1,
            quota_burst: 1,
            ..AdmissionConfig::default()
        }));
        // The splice lane legitimately bypasses admission (cache hits cost
        // nothing); turn it off so the second frame reaches the quota.
        service.set_reply_splice(false);
        let peer = Some("10.0.0.7".parse().unwrap());

        // The burst admits the first frame…
        let first = service.dispatch_line_from(classify_line(1), peer).wait();
        assert!(ResponseEnvelope::from_json_str(&first).unwrap().is_ok());

        // …and the second is rejected before taking a pool slot, with the
        // structured retry hint on the wire.
        let second = service.dispatch_line_from(classify_line(2), peer).wait();
        let reply = ResponseEnvelope::from_json_str(&second).unwrap();
        assert_eq!(reply.id, Some(2), "denials still echo the request id");
        assert_eq!(reply.kind, "classify");
        let error = reply.result.unwrap_err();
        assert_eq!(error.category, "overloaded");
        assert_eq!(error.retryable, Some(true));
        assert!(error.retry_after_millis.unwrap_or(0) >= 1);

        // A different peer still has its own untouched bucket.
        let other = Some("10.0.0.8".parse().unwrap());
        let third = service.dispatch_line_from(classify_line(3), other).wait();
        assert!(ResponseEnvelope::from_json_str(&third).unwrap().is_ok());

        // Latency accounting stays symmetric: the shed frame is counted,
        // errored, shed, and present in the histogram.
        let stats = service.metrics().snapshot(Some(RequestKind::Classify));
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.count, 3);
        assert_eq!(
            service
                .metrics()
                .histogram(Some(RequestKind::Classify))
                .count,
            3
        );
    }

    #[test]
    fn p99_shed_rejects_compute_frames_but_admits_control_kinds() {
        let service = Arc::new(service().with_admission(AdmissionConfig {
            shed_p99_micros: 1_000,
            ..AdmissionConfig::default()
        }));
        // Seed the classify histogram well past the threshold, as a sustained
        // period of 50ms requests would.
        for _ in 0..64 {
            service.metrics().record(
                Some(RequestKind::Classify),
                std::time::Duration::from_millis(50),
                true,
            );
        }

        let reply = service.dispatch_line_from(classify_line(9), None).wait();
        let reply = ResponseEnvelope::from_json_str(&reply).unwrap();
        let error = reply.result.unwrap_err();
        assert_eq!(error.category, "overloaded");
        assert!(error.message.contains("p99"), "{}", error.message);
        assert_eq!(error.retryable, Some(true));
        assert_eq!(
            service.metrics().snapshot(Some(RequestKind::Classify)).shed,
            1
        );

        // Control kinds are never shed — operators must be able to observe
        // an overloaded server.
        for kind in ["stats", "health", "metrics"] {
            let line = format!("{{\"v\":1,\"id\":1,\"kind\":\"{kind}\"}}");
            let reply = service.dispatch_line_from(line, None).wait();
            assert!(
                ResponseEnvelope::from_json_str(&reply).unwrap().is_ok(),
                "{kind} must bypass admission"
            );
        }

        // The lock-step (stdio) path sheds identically.
        let locked = service.handle_line(&classify_line(10));
        assert_eq!(locked.result.unwrap_err().category, "overloaded");
    }

    #[test]
    fn control_kinds_are_admitted_past_an_exhausted_quota() {
        let service = Arc::new(service().with_admission(AdmissionConfig {
            quota_rps: 1,
            quota_burst: 1,
            ..AdmissionConfig::default()
        }));
        service.set_reply_splice(false);
        let peer = Some("192.168.1.20".parse().unwrap());
        let first = service.dispatch_line_from(classify_line(1), peer).wait();
        assert!(ResponseEnvelope::from_json_str(&first).unwrap().is_ok());
        for kind in ["stats", "health", "metrics"] {
            let line = format!("{{\"v\":1,\"id\":2,\"kind\":\"{kind}\"}}");
            let reply = service.dispatch_line_from(line, peer).wait();
            assert!(
                ResponseEnvelope::from_json_str(&reply).unwrap().is_ok(),
                "{kind} must not consume quota"
            );
        }
    }

    #[test]
    fn snapshot_kind_writes_the_configured_path_and_restores() {
        let dir = std::env::temp_dir().join(format!("lcl-snap-service-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cache.snap");
        let warm = service().with_cache_snapshot_path(path.clone());

        // Warm the cache, then snapshot over the wire.
        assert!(warm.handle_line(&classify_line(1)).is_ok());
        let payload = warm
            .handle_line(r#"{"v":1,"id":2,"kind":"snapshot"}"#)
            .result
            .expect("snapshot succeeds");
        assert_eq!(payload.require("entries").unwrap().as_int().unwrap(), 1);
        assert_eq!(
            payload.require("path").unwrap().as_str().unwrap(),
            path.display().to_string()
        );
        assert!(path.exists());

        // A fresh service restores it at startup and reports the count.
        let fresh = service().with_cache_snapshot_path(path.clone());
        let restored = fresh
            .restore_cache_snapshot()
            .expect("path configured and file present")
            .expect("snapshot restores");
        assert!(restored.contains("restored 1/1"), "{restored}");
        assert_eq!(fresh.engine().cache_stats().entries, 1);

        // A corrupt snapshot is reported, not fatal.
        std::fs::write(&path, "not a snapshot\n").expect("overwrite");
        let corrupt = service().with_cache_snapshot_path(path.clone());
        let error = corrupt
            .restore_cache_snapshot()
            .expect("file present")
            .expect_err("corrupt snapshot rejected");
        assert!(error.contains("ignoring cache snapshot"), "{error}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_kind_without_a_path_is_a_classifier_error() {
        let service = service();
        let error = service
            .handle_line(r#"{"v":1,"id":3,"kind":"snapshot"}"#)
            .result
            .unwrap_err();
        assert_eq!(error.category, "classifier");
        assert!(
            error.message.contains("--cache-snapshot"),
            "{}",
            error.message
        );
    }
}
