//! Admission control: load shedding and per-client quotas.
//!
//! Both checks run at dispatch time, *before* a frame takes a worker-pool
//! slot or a pipeline in-flight slot, and both reject with the structured
//! `overloaded` error category (retryable, with a `retry_after_millis`
//! hint) so well-behaved clients can back off instead of piling on.
//!
//! * **Load shedding** ([`ShedPolicy`]) — trips on either of two signals:
//!   the worker pool's queue depth (`--shed-queue-depth`: jobs submitted
//!   but not yet picked up) or the per-kind latency p99
//!   (`--shed-p99-micros`, read from the detailed-metrics histograms).
//!   Shedding is *global*: once the server is saturated, every compute
//!   frame is cheap-rejected until the backlog drains, which is what keeps
//!   shed replies fast (they never queue behind the work that caused the
//!   overload).
//! * **Per-client quotas** ([`QuotaLimiter`]) — a token bucket per peer
//!   address (`--quota-rps` / `--quota-burst`). A client that exceeds its
//!   rate is rejected individually, before the global shed signals are
//!   even consulted, so one greedy client cannot push the server into
//!   shedding everyone else.
//!
//! Control kinds (`stats`, `health`, `metrics`, `snapshot`) are always
//! admitted — an operator must be able to observe an overloaded server —
//! and replies served by the splice fast lane bypass admission entirely
//! (splicing cached bytes is cheaper than building a shed reply would be).

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Admission rejections never suggest waiting less than this.
const MIN_RETRY_MILLIS: u64 = 10;

/// Admission rejections never suggest waiting longer than this.
const MAX_RETRY_MILLIS: u64 = 5_000;

/// Per-peer quota buckets are capped at this many tracked peers; beyond
/// it, stale buckets are evicted before a new peer is admitted.
const MAX_TRACKED_PEERS: usize = 10_000;

/// Admission-control thresholds, all disabled (0) by default.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Shed compute frames whose kind's latency p99 exceeds this many
    /// microseconds (0 = disabled). Needs detailed metrics: with
    /// histograms off the p99 reads 0 and this signal is inert.
    pub shed_p99_micros: u64,
    /// Shed compute frames while the worker pool has at least this many
    /// queued jobs (0 = disabled).
    pub shed_queue_depth: usize,
    /// Steady-state per-peer request rate in requests/second
    /// (0 = disabled).
    pub quota_rps: u64,
    /// Per-peer burst allowance in requests; defaults to `quota_rps` when
    /// left 0 with a nonzero rate.
    pub quota_burst: u64,
}

impl AdmissionConfig {
    /// Whether any admission check is configured.
    pub fn is_enabled(&self) -> bool {
        self.shed_p99_micros > 0 || self.shed_queue_depth > 0 || self.quota_rps > 0
    }
}

/// One admission rejection: the human-readable reason and the back-off
/// hint that go into the `overloaded` error reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Denial {
    /// Goes into the error reply's `message`.
    pub message: String,
    /// Goes into the error reply's `retry_after_millis` hint.
    pub retry_after_millis: u64,
}

/// The load-shedding thresholds and their trip logic. Stateless: the
/// signals (queue depth, worker count, per-kind p99) are sampled by the
/// caller at dispatch time.
#[derive(Copy, Clone, Debug)]
pub(crate) struct ShedPolicy {
    p99_micros: u64,
    queue_depth: usize,
}

impl ShedPolicy {
    pub(crate) fn new(config: &AdmissionConfig) -> Option<ShedPolicy> {
        if config.shed_p99_micros == 0 && config.shed_queue_depth == 0 {
            return None;
        }
        Some(ShedPolicy {
            p99_micros: config.shed_p99_micros,
            queue_depth: config.shed_queue_depth,
        })
    }

    /// Decides whether a compute frame must be shed given the sampled
    /// signals: the worker pool's current queue depth and worker count,
    /// and the requested kind's latency p99 in microseconds.
    pub(crate) fn evaluate(
        &self,
        queue_depth: usize,
        workers: usize,
        p99_micros: u64,
    ) -> Option<Denial> {
        if self.queue_depth > 0 && queue_depth >= self.queue_depth {
            // The deeper the backlog relative to the workers draining it,
            // the longer the suggested back-off.
            let per_worker = queue_depth / workers.max(1);
            let retry = (10 + 5 * per_worker as u64).clamp(MIN_RETRY_MILLIS, MAX_RETRY_MILLIS);
            return Some(Denial {
                message: format!(
                    "overloaded: {queue_depth} jobs queued (shedding at {})",
                    self.queue_depth
                ),
                retry_after_millis: retry,
            });
        }
        if self.p99_micros > 0 && p99_micros > self.p99_micros {
            let retry = (p99_micros / 1_000).clamp(MIN_RETRY_MILLIS, MAX_RETRY_MILLIS);
            return Some(Denial {
                message: format!(
                    "overloaded: p99 latency {p99_micros}µs exceeds {}µs",
                    self.p99_micros
                ),
                retry_after_millis: retry,
            });
        }
        None
    }
}

/// One peer's token bucket.
#[derive(Copy, Clone, Debug)]
struct Bucket {
    /// Fractional tokens currently available, in `0.0..=burst`.
    tokens: f64,
    /// When the bucket was last refilled.
    last: Instant,
}

/// A per-peer token-bucket rate limiter. Each admitted frame costs one
/// token; tokens refill at `rps` per second up to `burst`. Connections
/// without a peer address (stdio) share one sentinel bucket.
#[derive(Debug)]
pub(crate) struct QuotaLimiter {
    rps: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl QuotaLimiter {
    pub(crate) fn new(config: &AdmissionConfig) -> Option<QuotaLimiter> {
        if config.quota_rps == 0 {
            return None;
        }
        let burst = if config.quota_burst == 0 {
            config.quota_rps
        } else {
            config.quota_burst
        };
        Some(QuotaLimiter {
            rps: config.quota_rps as f64,
            burst: burst as f64,
            buckets: Mutex::new(HashMap::new()),
        })
    }

    /// The bucket peers without an address (stdio) are accounted under.
    pub(crate) fn sentinel_peer() -> IpAddr {
        IpAddr::from([0u8, 0, 0, 0])
    }

    /// Spends one token from `peer`'s bucket, or explains when to retry.
    /// `now` is injected so tests can drive time deterministically.
    pub(crate) fn admit(&self, peer: IpAddr, now: Instant) -> Result<(), Denial> {
        let mut buckets = match self.buckets.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if buckets.len() >= MAX_TRACKED_PEERS && !buckets.contains_key(&peer) {
            // Evict refilled-to-burst buckets: they carry no state a fresh
            // bucket would not.
            let (rps, burst) = (self.rps, self.burst);
            buckets
                .retain(|_, bucket| refilled(bucket.tokens, bucket.last, now, rps, burst) < burst);
        }
        let bucket = buckets.entry(peer).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        bucket.tokens = refilled(bucket.tokens, bucket.last, now, self.rps, self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        let retry = ((deficit / self.rps) * 1_000.0).ceil() as u64;
        Err(Denial {
            message: format!(
                "overloaded: per-client rate limit exceeded ({} requests/s, burst {})",
                self.rps, self.burst
            ),
            retry_after_millis: retry.clamp(MIN_RETRY_MILLIS, MAX_RETRY_MILLIS),
        })
    }

    /// Peers with live buckets (for tests and the eviction cap).
    #[cfg(test)]
    fn tracked_peers(&self) -> usize {
        match self.buckets.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }
}

/// The token count after refilling from `last` to `now` at `rps`, capped
/// at `burst`.
fn refilled(tokens: f64, last: Instant, now: Instant, rps: f64, burst: f64) -> f64 {
    let elapsed = now.saturating_duration_since(last).as_secs_f64();
    (tokens + elapsed * rps).min(burst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config(p99: u64, queue: usize, rps: u64, burst: u64) -> AdmissionConfig {
        AdmissionConfig {
            shed_p99_micros: p99,
            shed_queue_depth: queue,
            quota_rps: rps,
            quota_burst: burst,
        }
    }

    #[test]
    fn disabled_config_builds_no_checkers() {
        let config = AdmissionConfig::default();
        assert!(!config.is_enabled());
        assert!(ShedPolicy::new(&config).is_none());
        assert!(QuotaLimiter::new(&config).is_none());
    }

    #[test]
    fn queue_depth_threshold_sheds_at_and_above() {
        let policy = ShedPolicy::new(&config(0, 8, 0, 0)).expect("enabled");
        assert!(policy.evaluate(7, 4, u64::MAX).is_none(), "below threshold");
        let denial = policy.evaluate(8, 4, 0).expect("at threshold");
        assert!(denial.message.contains("8 jobs queued"), "{denial:?}");
        assert_eq!(denial.retry_after_millis, 10 + 5 * 2);
        // A deep backlog suggests a longer wait, clamped to 5s.
        let deep = policy.evaluate(1_000_000, 1, 0).expect("deep backlog");
        assert_eq!(deep.retry_after_millis, MAX_RETRY_MILLIS);
        // Zero workers must not divide by zero.
        assert!(policy.evaluate(8, 0, 0).is_some());
    }

    #[test]
    fn p99_threshold_sheds_strictly_above() {
        let policy = ShedPolicy::new(&config(1_000, 0, 0, 0)).expect("enabled");
        assert!(policy.evaluate(usize::MAX, 1, 1_000).is_none(), "at = ok");
        let denial = policy.evaluate(0, 1, 250_000).expect("p99 blown");
        assert!(denial.message.contains("250000µs"), "{denial:?}");
        assert_eq!(denial.retry_after_millis, 250);
        // A barely-exceeded p99 still suggests the minimum wait.
        let barely = policy.evaluate(0, 1, 1_001).expect("barely over");
        assert_eq!(barely.retry_after_millis, MIN_RETRY_MILLIS);
    }

    #[test]
    fn queue_signal_wins_over_p99_when_both_trip() {
        let policy = ShedPolicy::new(&config(10, 1, 0, 0)).expect("enabled");
        let denial = policy.evaluate(5, 1, 99_999).expect("shed");
        assert!(denial.message.contains("jobs queued"), "{denial:?}");
    }

    #[test]
    fn quota_spends_burst_then_refills() {
        let limiter = QuotaLimiter::new(&config(0, 0, 10, 3)).expect("enabled");
        let peer = IpAddr::from([192, 0, 2, 7]);
        let t0 = Instant::now();
        for _ in 0..3 {
            limiter.admit(peer, t0).expect("burst admits");
        }
        let denial = limiter.admit(peer, t0).expect_err("burst spent");
        assert!(denial.message.contains("rate limit"), "{denial:?}");
        // One token refills after 1/rps = 100ms.
        assert!(denial.retry_after_millis >= 100);
        limiter
            .admit(peer, t0 + Duration::from_millis(150))
            .expect("a token refilled");
        // A different peer has its own untouched bucket.
        limiter
            .admit(IpAddr::from([192, 0, 2, 8]), t0)
            .expect("fresh peer admits");
    }

    #[test]
    fn quota_refill_is_capped_at_burst() {
        let limiter = QuotaLimiter::new(&config(0, 0, 1_000, 2)).expect("enabled");
        let peer = QuotaLimiter::sentinel_peer();
        let t0 = Instant::now();
        limiter.admit(peer, t0).expect("first");
        // A long idle period refills to burst (2), not more.
        let later = t0 + Duration::from_secs(3600);
        limiter.admit(peer, later).expect("one");
        limiter.admit(peer, later).expect("two");
        assert!(limiter.admit(peer, later).is_err(), "burst is the cap");
    }

    #[test]
    fn quota_burst_defaults_to_rps() {
        let limiter = QuotaLimiter::new(&config(0, 0, 5, 0)).expect("enabled");
        let peer = QuotaLimiter::sentinel_peer();
        let t0 = Instant::now();
        for _ in 0..5 {
            limiter.admit(peer, t0).expect("burst = rps = 5");
        }
        assert!(limiter.admit(peer, t0).is_err());
    }

    #[test]
    fn stale_peers_are_evicted_at_the_cap() {
        let limiter = QuotaLimiter::new(&config(0, 0, 1_000, 1)).expect("enabled");
        let t0 = Instant::now();
        for n in 0..MAX_TRACKED_PEERS {
            let peer = IpAddr::from(u32::try_from(n).expect("fits").to_be_bytes());
            limiter.admit(peer, t0).expect("admit");
        }
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // By now every bucket has refilled to burst; a new peer triggers
        // the sweep and the map collapses to just the newcomer.
        let late = t0 + Duration::from_secs(60);
        let newcomer = IpAddr::from([203, 0, 113, 1]);
        limiter.admit(newcomer, late).expect("admit after sweep");
        assert_eq!(limiter.tracked_peers(), 1);
    }
}
