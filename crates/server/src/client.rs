//! A blocking NDJSON client for the classification service.
//!
//! [`Client`] speaks the same envelope types the server does, over one TCP
//! connection, with monotonically increasing request ids that are checked
//! against the echoed response ids. The one-call-at-a-time methods
//! ([`Client::classify`], [`Client::solve`], …) lock-step: one request in
//! flight per round-trip. [`Client::classify_many_pipelined`] instead keeps
//! a window of requests in flight on the single connection, exploiting the
//! server's pipelined connection path and its in-order reply guarantee. The
//! client exists for the integration tests, the CI smoke step, the
//! `server_throughput` bench and small tools, not as a production SDK.

use lcl_paths::classifier::{Complexity, Verdict};
use lcl_paths::gen::GenConfig;
use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{
    ErrorReply, Instance, Labeling, ProblemSpec, RequestEnvelope, ResponseEnvelope,
    StreamInstanceSpec,
};
use std::error::Error as StdError;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors produced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (or was closed mid-call).
    Io(io::Error),
    /// The server's reply violated the protocol (unparseable frame,
    /// mismatched id, missing payload field).
    Protocol(String),
    /// The server replied with a structured error.
    Remote(ErrorReply),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ClientError::Remote(reply) => write!(f, "server error: {reply}"),
        }
    }
}

impl StdError for ClientError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The reply to a `solve` request: complexity class, round count and the
/// labeling the synthesized algorithm produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SolveReply {
    /// The problem's complexity class.
    pub complexity: Complexity,
    /// LOCAL rounds the synthesized algorithm used on this instance.
    pub rounds: usize,
    /// The produced (verified) labeling.
    pub labeling: Labeling,
}

/// The terminal summary of a `solve_stream` request: what was labeled and
/// how it was delivered.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamSummary {
    /// The problem's complexity class.
    pub complexity: Complexity,
    /// LOCAL rounds the synthesized algorithm used per node.
    pub rounds: usize,
    /// Nodes labeled — the streamed instance's full length.
    pub nodes: u64,
    /// Chunk frames that preceded this summary.
    pub chunks: u64,
}

/// Default number of requests [`Client::classify_many_pipelined`] keeps in
/// flight; matches the server's default per-connection window
/// (`DEFAULT_MAX_INFLIGHT`), so neither side idles waiting for the other.
pub const DEFAULT_PIPELINE_WINDOW: usize = 32;

/// A blocking client holding one connection to an `lcl-server`.
///
/// ```
/// use lcl_paths::{problems, Engine};
/// use lcl_server::{Client, Server, Service};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = Arc::new(Service::new(Engine::builder().parallelism(2).build()));
/// let handle = Server::bind(service, "127.0.0.1:0")?.start()?;
///
/// let mut client = Client::connect(handle.addr())?;
/// // Lock-step: one request per round-trip.
/// let verdict = client.classify(&problems::coloring(3).to_spec())?;
/// assert_eq!(verdict.complexity.wire_name(), "log-star");
/// // Pipelined: a window of requests in flight on the same connection,
/// // outcomes in input order (0 = the default window).
/// let specs: Vec<_> = (2..=5).map(|k| problems::coloring(k).to_spec()).collect();
/// let outcomes = client.classify_many_pipelined(&specs, 0)?;
/// assert_eq!(outcomes.len(), 4);
/// assert!(outcomes.iter().all(Result::is_ok));
///
/// drop(client);
/// handle.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: i64,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Small request frames: disable Nagle so round-trips don't stall
        // against delayed ACKs.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sends one raw frame (a line, without its newline) — no envelope is
    /// added. Exposed for protocol-robustness harnesses that need to send
    /// deliberately malformed frames.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_frame(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one raw response frame.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a closed connection.
    pub fn recv_frame(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Performs one request/response exchange, returning the response
    /// payload.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, protocol violations (including a response id
    /// that does not echo the request id), or a structured server error.
    pub fn call(&mut self, kind: &str, payload: JsonValue) -> Result<JsonValue, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_frame(&RequestEnvelope::new(id, kind, payload).into_json_string())?;
        let line = self.recv_frame()?;
        let response = ResponseEnvelope::from_json_str(&line)
            .map_err(|e| ClientError::Protocol(format!("bad response envelope: {e}")))?;
        if response.id != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id {:?} does not echo request id {id}",
                response.id
            )));
        }
        response.result.map_err(ClientError::Remote)
    }

    /// Classifies one problem, returning its wire verdict.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn classify(&mut self, spec: &ProblemSpec) -> Result<Verdict, ClientError> {
        let payload = JsonValue::object([("problem", spec.to_json())]);
        let reply = self.call("classify", payload)?;
        let verdict = require(&reply, "verdict")?;
        Verdict::from_json(verdict)
            .map_err(|e| ClientError::Protocol(format!("bad verdict in reply: {e}")))
    }

    /// Classifies a batch in one request, returning per-item outcomes in
    /// input order.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; per-item classification failures are returned
    /// inside the vector, not as a call error.
    pub fn classify_many(
        &mut self,
        specs: &[ProblemSpec],
    ) -> Result<Vec<Result<Verdict, ErrorReply>>, ClientError> {
        let payload = JsonValue::object([(
            "problems",
            JsonValue::Array(specs.iter().map(ProblemSpec::to_json).collect()),
        )]);
        let reply = self.call("classify_many", payload)?;
        let items = require(&reply, "verdicts")?
            .as_array()
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        items
            .iter()
            .map(|item| {
                let ok = require(item, "ok")?
                    .as_bool()
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                if ok {
                    Verdict::from_json(require(item, "verdict")?)
                        .map(Ok)
                        .map_err(|e| ClientError::Protocol(format!("bad verdict in reply: {e}")))
                } else {
                    ErrorReply::from_json(require(item, "error")?)
                        .map(Err)
                        .map_err(|e| ClientError::Protocol(format!("bad error in reply: {e}")))
                }
            })
            .collect()
    }

    /// Classifies a batch by **pipelining** one `classify` request per spec
    /// over the single connection: up to `window` requests are in flight at
    /// once (`0` means [`DEFAULT_PIPELINE_WINDOW`]), so the engine's worker
    /// pool stays busy instead of idling through one round-trip per problem.
    /// Outcomes come back in input order — the server guarantees replies in
    /// request order per connection, and each echoed id is verified.
    ///
    /// Keep `window × frame size` comfortably below the socket buffer
    /// capacity: a client that floods without reading relies on the kernel
    /// buffering the replies to its unread requests. The default window is
    /// safe by a wide margin for typical classify-sized specs (hundreds of
    /// bytes); shrink it when pipelining specs anywhere near the 1 MiB
    /// frame limit.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or protocol violations (an out-of-order or
    /// unparseable reply desynchronizes the stream and is reported as
    /// [`ClientError::Protocol`]); per-item classification failures are
    /// returned inside the vector, not as a call error.
    pub fn classify_many_pipelined(
        &mut self,
        specs: &[ProblemSpec],
        window: usize,
    ) -> Result<Vec<Result<Verdict, ErrorReply>>, ClientError> {
        let window = if window == 0 {
            DEFAULT_PIPELINE_WINDOW
        } else {
            window
        };
        let first_id = self.next_id;
        self.next_id += specs.len() as i64;
        // Serialize each spec once, splice it into each frame with the
        // pre-sorted envelope skeleton (byte-identical to the envelope
        // serializer — pinned by a test), and refill in half-window bursts:
        // at tens of thousands of requests per second, tree rebuilding and
        // one write syscall per frame are where a pipelining client's time
        // actually goes.
        let serialized: Vec<String> = specs.iter().map(|s| s.to_json().to_json_string()).collect();
        let mut results: Vec<Result<Verdict, ErrorReply>> = Vec::with_capacity(specs.len());
        let mut sent = 0usize;
        let mut burst = String::new();
        while results.len() < specs.len() {
            // Refill once at least half the window has drained (and at the
            // start), topping it up fully in one buffered write.
            if sent < specs.len() && sent - results.len() <= window / 2 {
                burst.clear();
                while sent < specs.len() && sent - results.len() < window {
                    let id = first_id + sent as i64;
                    burst.push_str(&classify_frame(id, &serialized[sent]));
                    burst.push('\n');
                    sent += 1;
                }
                self.writer.write_all(burst.as_bytes())?;
                self.writer.flush()?;
            }
            let line = self.recv_frame()?;
            let response = ResponseEnvelope::from_json_str(&line)
                .map_err(|e| ClientError::Protocol(format!("bad response envelope: {e}")))?;
            let expected = first_id + results.len() as i64;
            if response.id != Some(expected) {
                return Err(ClientError::Protocol(format!(
                    "pipelined response id {:?} does not echo request id {expected} \
                     (replies must arrive in request order)",
                    response.id
                )));
            }
            match response.result {
                Ok(payload) => {
                    let verdict = Verdict::from_json(require(&payload, "verdict")?)
                        .map_err(|e| ClientError::Protocol(format!("bad verdict in reply: {e}")))?;
                    results.push(Ok(verdict));
                }
                Err(error) => results.push(Err(error)),
            }
        }
        Ok(results)
    }

    /// Classifies, synthesizes and runs the problem on a concrete instance.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn solve(
        &mut self,
        spec: &ProblemSpec,
        instance: &Instance,
    ) -> Result<SolveReply, ClientError> {
        let payload = JsonValue::object([
            ("problem", spec.to_json()),
            ("instance", instance.to_json()),
        ]);
        let reply = self.call("solve", payload)?;
        let protocol = |what: String| ClientError::Protocol(what);
        let complexity_name = require(&reply, "complexity")?
            .as_str()
            .map_err(|e| protocol(e.to_string()))?;
        let complexity = Complexity::from_wire_name(complexity_name)
            .ok_or_else(|| protocol(format!("unknown complexity `{complexity_name}`")))?;
        let rounds = require(&reply, "rounds")?
            .as_int()
            .ok()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| protocol("invalid round count".to_string()))?;
        let mut outputs = Vec::new();
        for value in require(require(&reply, "labeling")?, "outputs")?
            .as_array()
            .map_err(|e| protocol(e.to_string()))?
        {
            let index = value
                .as_int()
                .ok()
                .and_then(|v| u16::try_from(v).ok())
                .ok_or_else(|| protocol("invalid output label".to_string()))?;
            outputs.push(index);
        }
        Ok(SolveReply {
            complexity,
            rounds,
            labeling: Labeling::from_indices(&outputs),
        })
    }

    /// Asks the server to deterministically generate a seeded LCL problem,
    /// returning the spec (ready for [`Client::classify`] /
    /// [`Client::solve`]) and the server-computed canonical hash as a
    /// 16-digit hex string.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn generate(&mut self, config: &GenConfig) -> Result<(ProblemSpec, String), ClientError> {
        let reply = self.call("generate", config.to_json())?;
        let spec = ProblemSpec::from_json(require(&reply, "problem")?)
            .map_err(|e| ClientError::Protocol(format!("bad problem in reply: {e}")))?;
        let hash = require(&reply, "canonical_hash")?
            .as_str()
            .map_err(|e| ClientError::Protocol(e.to_string()))?
            .to_string();
        Ok((spec, hash))
    }

    /// Labels a streamed instance: sends one `solve_stream` request and
    /// consumes its reply stream, invoking `on_chunk(offset, outputs)` for
    /// every chunk frame in order and returning the terminal summary.
    ///
    /// The client verifies the stream's protocol guarantees as it reads:
    /// every frame echoes the request id, `seq` increments from 0, chunk
    /// `offset`s are contiguous, and the summary's node count equals the
    /// labels delivered.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, any violated ordering guarantee
    /// ([`ClientError::Protocol`]), or a structured server error — which
    /// may arrive mid-stream, terminating it.
    pub fn solve_stream(
        &mut self,
        spec: &ProblemSpec,
        instance: &StreamInstanceSpec,
        mut on_chunk: impl FnMut(u64, &[u16]),
    ) -> Result<StreamSummary, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = JsonValue::object([
            ("problem", spec.to_json()),
            ("instance", instance.to_json()),
        ]);
        self.send_frame(&RequestEnvelope::new(id, "solve_stream", payload).into_json_string())?;
        let protocol = |what: String| ClientError::Protocol(what);
        let int_field = |payload: &JsonValue, field: &str| -> Result<i64, ClientError> {
            require(payload, field)?
                .as_int()
                .map_err(|e| ClientError::Protocol(e.to_string()))
        };
        let mut next_seq = 0i64;
        let mut delivered = 0i64;
        loop {
            let line = self.recv_frame()?;
            let response = ResponseEnvelope::from_json_str(&line)
                .map_err(|e| protocol(format!("bad response envelope: {e}")))?;
            if response.id != Some(id) {
                return Err(protocol(format!(
                    "response id {:?} does not echo request id {id}",
                    response.id
                )));
            }
            let payload = response.result.map_err(ClientError::Remote)?;
            let seq = int_field(&payload, "seq")?;
            if payload.get("done").is_some() {
                if seq != next_seq {
                    return Err(protocol(format!(
                        "summary seq {seq} after {next_seq} chunk frames"
                    )));
                }
                let nodes = int_field(&payload, "nodes")?;
                if nodes != delivered {
                    return Err(protocol(format!(
                        "summary says {nodes} nodes but {delivered} labels arrived"
                    )));
                }
                let complexity_name = require(&payload, "complexity")?
                    .as_str()
                    .map_err(|e| protocol(e.to_string()))?;
                let complexity = Complexity::from_wire_name(complexity_name)
                    .ok_or_else(|| protocol(format!("unknown complexity `{complexity_name}`")))?;
                let rounds = int_field(&payload, "rounds")?;
                return Ok(StreamSummary {
                    complexity,
                    rounds: usize::try_from(rounds)
                        .map_err(|_| protocol("invalid round count".to_string()))?,
                    nodes: nodes as u64,
                    chunks: next_seq as u64,
                });
            }
            if seq != next_seq {
                return Err(protocol(format!(
                    "chunk seq {seq} arrived out of order (expected {next_seq})"
                )));
            }
            let offset = int_field(&payload, "offset")?;
            if offset != delivered {
                return Err(protocol(format!(
                    "chunk offset {offset} is not contiguous (expected {delivered})"
                )));
            }
            let mut outputs = Vec::new();
            for value in require(&payload, "outputs")?
                .as_array()
                .map_err(|e| protocol(e.to_string()))?
            {
                let index = value
                    .as_int()
                    .ok()
                    .and_then(|v| u16::try_from(v).ok())
                    .ok_or_else(|| protocol("invalid output label".to_string()))?;
                outputs.push(index);
            }
            delivered += outputs.len() as i64;
            next_seq += 1;
            on_chunk(offset as u64, &outputs);
        }
    }

    /// Fetches the server's cache/pool/latency statistics payload.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn stats(&mut self) -> Result<JsonValue, ClientError> {
        self.call("stats", JsonValue::Null)
    }

    /// Probes liveness, returning the health payload.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn health(&mut self) -> Result<JsonValue, ClientError> {
        self.call("health", JsonValue::Null)
    }

    /// Fetches the plaintext metrics exposition over the protocol (the
    /// `metrics` request kind) — the same document `--metrics-addr` serves
    /// over HTTP.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = self.call("metrics", JsonValue::Null)?;
        Ok(require(&reply, "exposition")?
            .as_str()
            .map_err(|e| ClientError::Protocol(e.to_string()))?
            .to_string())
    }
}

fn require<'a>(value: &'a JsonValue, field: &str) -> Result<&'a JsonValue, ClientError> {
    value
        .require(field)
        .map_err(|e| ClientError::Protocol(e.to_string()))
}

/// Builds one `classify` request frame around an already-serialized
/// `ProblemSpec` JSON document, without re-walking the spec tree.
///
/// The envelope keys are emitted in sorted order, so the result is
/// byte-identical to serializing the equivalent [`RequestEnvelope`] (the
/// canonical form); `envelope_skeleton_matches_the_canonical_serializer`
/// pins that equivalence.
fn classify_frame(id: i64, spec_json: &str) -> String {
    format!("{{\"id\":{id},\"kind\":\"classify\",\"payload\":{{\"problem\":{spec_json}}},\"v\":1}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_skeleton_matches_the_canonical_serializer() {
        let spec = lcl_paths::problems::coloring(3).to_spec();
        let spec_json = spec.to_json().to_json_string();
        let canonical = RequestEnvelope::new(
            41,
            "classify",
            JsonValue::object([("problem", spec.to_json())]),
        )
        .into_json_string();
        assert_eq!(classify_frame(41, &spec_json), canonical);
    }
}
