//! Byte-identity tests for the zero-serialization hot path: a spliced reply
//! (cached payload bytes with the request id patched in) must be
//! indistinguishable on the wire from a freshly serialized envelope — for
//! every request kind, on both TCP backends and on stdio — and frames that
//! cannot splice (string ids, malformed payloads, error replies) must fall
//! back to the slow path without touching the bytes cache.

use lcl_paths::gen::GenConfig;
use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{
    Instance, RequestEnvelope, ResponseEnvelope, StreamInputs, StreamInstanceSpec, Topology,
};
use lcl_paths::{problems, Engine};
use lcl_server::{serve_stdio, Backend, Client, Server, Service};
use std::sync::Arc;

/// Every TCP backend available on this platform (both on Linux).
fn backends() -> Vec<Backend> {
    [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

fn service() -> Arc<Service> {
    Arc::new(Service::new(
        Engine::builder().parallelism(2).cache_shards(2).build(),
    ))
}

fn frame(id: i64, kind: &str, payload: JsonValue) -> String {
    RequestEnvelope::new(id, kind, payload).to_json_string()
}

fn classify_frame(id: i64) -> String {
    frame(
        id,
        "classify",
        JsonValue::object([("problem", problems::coloring(3).to_spec().to_json())]),
    )
}

/// One frame of every request kind. The first classify is the cold miss;
/// the second attaches the reply bytes; the extreme-id pair are pure bytes
/// hits exercising the longest and the sign-carrying id splices. The
/// streaming solve goes last so lock-step draining stays simple.
fn all_kind_frames() -> Vec<(String, bool)> {
    let spec = problems::coloring(3).to_spec();
    let stream = StreamInstanceSpec {
        topology: Topology::Cycle,
        length: 64,
        inputs: StreamInputs::Uniform { label: 0 },
    };
    vec![
        (classify_frame(1), false),
        (classify_frame(2), false),
        (classify_frame(i64::MAX), false),
        (classify_frame(i64::MIN), false),
        (
            frame(
                3,
                "classify_many",
                JsonValue::object([(
                    "problems",
                    JsonValue::Array(vec![
                        spec.to_json(),
                        problems::coloring(4).to_spec().to_json(),
                    ]),
                )]),
            ),
            false,
        ),
        (
            frame(
                4,
                "solve",
                JsonValue::object([
                    ("problem", spec.to_json()),
                    (
                        "instance",
                        Instance::from_indices(Topology::Cycle, &[0; 12]).to_json(),
                    ),
                ]),
            ),
            false,
        ),
        (frame(5, "generate", GenConfig::new(11).to_json()), false),
        (frame(6, "stats", JsonValue::Null), false),
        (frame(7, "health", JsonValue::Null), false),
        (frame(8, "metrics", JsonValue::Null), false),
        (
            frame(
                9,
                "solve_stream",
                JsonValue::object([("problem", spec.to_json()), ("instance", stream.to_json())]),
            ),
            true,
        ),
    ]
}

/// The wire line re-serialized through the canonical envelope writer must
/// reproduce itself exactly: a spliced reply and a fresh one are the same
/// bytes or this fails.
fn assert_canonical(line: &str, ctx: &str) {
    let envelope = ResponseEnvelope::from_json_str(line)
        .unwrap_or_else(|e| panic!("[{ctx}] unparseable reply `{line}`: {e}"));
    assert_eq!(
        envelope.into_json_string(),
        line,
        "[{ctx}] reply is not the canonical envelope serialization"
    );
}

/// `line` with its leading `"id":<id>` swapped for `"id":1` — the only
/// bytes a spliced twin may differ in.
fn with_id_1(line: &str, id: i64) -> String {
    line.replacen(&format!("\"id\":{id}"), "\"id\":1", 1)
}

/// Shared counter assertions for the all-kinds workload: the three hot
/// classifies all spliced; the first of them rendered and attached the
/// bytes, the other two reused them.
fn assert_fast_lane_engaged(service: &Service, ctx: &str) {
    assert_eq!(service.metrics().spliced_frames(), 3, "[{ctx}]");
    let cache = service.engine().cache_stats();
    assert_eq!(cache.bytes_misses, 1, "[{ctx}]");
    assert_eq!(cache.bytes_hits, 2, "[{ctx}]");
}

#[test]
fn every_reply_is_canonical_envelope_bytes_on_both_tcp_backends() {
    for backend in backends() {
        let ctx = format!("{backend}");
        let service = service();
        let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
            .expect("bind")
            .backend(backend)
            .start()
            .expect("start");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let mut replies: Vec<String> = Vec::new();
        for (request, streaming) in all_kind_frames() {
            client.send_frame(&request).expect("send");
            loop {
                let line = client.recv_frame().expect("recv");
                let done = !streaming
                    || ResponseEnvelope::from_json_str(&line)
                        .ok()
                        .and_then(|e| e.result.ok())
                        .is_some_and(|p| p.get("done").is_some());
                replies.push(line);
                if done {
                    break;
                }
            }
        }

        for line in &replies {
            assert_canonical(line, &ctx);
        }
        // The spliced twins differ from the cold reply only in the id.
        assert_eq!(with_id_1(&replies[1], 2), replies[0], "[{ctx}]");
        assert_eq!(with_id_1(&replies[2], i64::MAX), replies[0], "[{ctx}]");
        assert_eq!(with_id_1(&replies[3], i64::MIN), replies[0], "[{ctx}]");
        assert_fast_lane_engaged(&service, &ctx);
        handle.shutdown();
    }
}

#[test]
fn every_reply_is_canonical_envelope_bytes_on_stdio() {
    let service = service();
    let input: String = all_kind_frames()
        .into_iter()
        .map(|(request, _)| format!("{request}\n"))
        .collect();
    let mut output = Vec::new();
    serve_stdio(&service, input.as_bytes(), &mut output).expect("stdio session");

    let replies: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
    assert!(
        replies.len() > all_kind_frames().len(),
        "chunks arrived too"
    );
    for line in &replies {
        assert_canonical(line, "stdio");
    }
    assert_eq!(with_id_1(replies[1], 2), replies[0]);
    assert_eq!(with_id_1(replies[2], i64::MAX), replies[0]);
    assert_eq!(with_id_1(replies[3], i64::MIN), replies[0]);
    assert_fast_lane_engaged(&service, "stdio");
}

#[test]
fn splicing_on_and_off_produce_the_same_bytes_for_deterministic_kinds() {
    // `stats` and `metrics` replies embed wall-clock fields, so the
    // byte-for-byte comparison drives every *deterministic* kind; those two
    // are still covered by the canonical-roundtrip tests above.
    let deterministic: String = all_kind_frames()
        .into_iter()
        .filter(|(request, _)| !request.contains("\"stats\"") && !request.contains("\"metrics\""))
        .map(|(request, _)| format!("{request}\n"))
        .collect();
    let run = |splice: bool| -> (Vec<String>, u64) {
        let service =
            Service::new(Engine::builder().parallelism(1).build()).with_reply_splice(splice);
        let mut output = Vec::new();
        serve_stdio(&service, deterministic.as_bytes(), &mut output).expect("stdio session");
        let lines = std::str::from_utf8(&output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        (lines, service.metrics().spliced_frames())
    };
    let (spliced, fast) = run(true);
    let (rendered, slow) = run(false);
    assert_eq!(spliced, rendered, "the fast lane may never change the wire");
    assert_eq!(fast, 3, "the spliced run took the fast lane");
    assert_eq!(slow, 0, "the toggled-off run never spliced");
}

#[test]
fn string_ids_with_escapable_characters_error_and_never_splice() {
    let service = service();
    let problem = problems::coloring(3).to_spec().to_json().to_json_string();
    // Prime the bytes cache so a splice *would* be available if the broken
    // frames ever reached the fast lane.
    let mut input = format!("{}\n{}\n", classify_frame(1), classify_frame(2));
    // Ids must be integers; these are strings whose content lands in every
    // JSON escaping corner (quote, backslash, unicode) — each must come
    // back as a structured error, bypassing the splice lane entirely.
    for id in ["quo\"te", "back\\slash", "uni\u{1F980}code"] {
        let id_token = JsonValue::Str(id.to_string()).to_json_string();
        input.push_str(&format!(
            "{{\"v\":1,\"id\":{id_token},\"kind\":\"classify\",\"payload\":{{\"problem\":{problem}}}}}\n"
        ));
    }
    // And one structurally valid classify with a malformed problem, twice:
    // error replies are recomputed every time, never cached or spliced.
    for id in [50, 51] {
        input.push_str(&format!("{}\n", frame(id, "classify", JsonValue::Null)));
    }
    input.push_str(&format!("{}\n", classify_frame(60)));

    let mut output = Vec::new();
    serve_stdio(&service, input.as_bytes(), &mut output).expect("stdio session");
    let replies: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
    assert_eq!(replies.len(), 8);

    for line in &replies {
        assert_canonical(line, "stdio");
    }
    for line in &replies[2..5] {
        let envelope = ResponseEnvelope::from_json_str(line).unwrap();
        assert!(!envelope.is_ok(), "string ids must be rejected: {line}");
    }
    let (first_error, second_error) = (
        ResponseEnvelope::from_json_str(replies[5]).unwrap(),
        ResponseEnvelope::from_json_str(replies[6]).unwrap(),
    );
    assert!(!first_error.is_ok() && !second_error.is_ok());
    // The closing valid classify still splices, byte-identical to the hot
    // reply from before the broken frames.
    assert_eq!(with_id_1(replies[7], 60), replies[0]);

    // Exactly the two hot classifies touched the fast lane: one attach,
    // one reuse, zero contributions from the five broken frames.
    assert_eq!(service.metrics().spliced_frames(), 2);
    let cache = service.engine().cache_stats();
    assert_eq!(cache.bytes_misses, 1);
    assert_eq!(cache.bytes_hits, 1);
    assert_eq!(cache.entries, 1, "errors are never cached");
}
