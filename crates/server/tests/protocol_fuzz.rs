//! Protocol-robustness tests: a seeded-RNG fuzz loop feeds truncated,
//! oversized and otherwise malformed NDJSON frames to the server dispatch
//! and asserts that every frame gets a structured, parseable reply, and that
//! the connection — and the engine's worker pool behind it — survive.

use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{RequestEnvelope, ResponseEnvelope};
use lcl_paths::{problems, Engine};
use lcl_server::{serve_stdio, Client, Server, Service, MAX_FRAME_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Well-formed frames the mutator starts from, covering every request kind.
fn seed_frames() -> Vec<String> {
    let spec = problems::coloring(3).to_spec().to_json();
    let instance =
        lcl_paths::problem::Instance::from_indices(lcl_paths::problem::Topology::Cycle, &[0; 12])
            .to_json();
    vec![
        RequestEnvelope::new(
            1,
            "classify",
            JsonValue::object([("problem", spec.clone())]),
        )
        .to_json_string(),
        RequestEnvelope::new(
            2,
            "classify_many",
            JsonValue::object([("problems", JsonValue::Array(vec![spec.clone()]))]),
        )
        .to_json_string(),
        RequestEnvelope::new(
            3,
            "solve",
            JsonValue::object([("problem", spec), ("instance", instance)]),
        )
        .to_json_string(),
        RequestEnvelope::new(4, "stats", JsonValue::Null).to_json_string(),
        RequestEnvelope::new(5, "health", JsonValue::Null).to_json_string(),
        // Structurally hostile bases.
        "{}".to_string(),
        "[1,2,3]".to_string(),
        "\"just a string\"".to_string(),
        String::new(),
    ]
}

/// Applies 1–4 random mutations: truncation, byte flips, insertions,
/// duplicated slices. Newlines are stripped so each result stays one frame.
fn mutate(rng: &mut StdRng, base: &str) -> String {
    let mut bytes = base.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1..5usize) {
        if bytes.is_empty() {
            bytes.extend_from_slice(b"{\"v\":");
            continue;
        }
        match rng.gen_range(0..4u32) {
            0 => {
                // Truncate at a random point.
                let cut = rng.gen_range(0..bytes.len());
                bytes.truncate(cut);
            }
            1 => {
                // Flip one byte to a random printable-or-not value.
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen_range(1..256u32) as u8;
            }
            2 => {
                // Insert a random byte.
                let at = rng.gen_range(0..bytes.len() + 1);
                bytes.insert(at, rng.gen_range(1..256u32) as u8);
            }
            _ => {
                // Duplicate a random slice (grows nesting/garbage).
                let start = rng.gen_range(0..bytes.len());
                let end = rng.gen_range(start..bytes.len().min(start + 32) + 1);
                let slice: Vec<u8> = bytes[start..end].to_vec();
                let at = rng.gen_range(0..bytes.len() + 1);
                bytes.splice(at..at, slice);
            }
        }
    }
    bytes.retain(|&b| b != b'\n' && b != b'\r');
    String::from_utf8_lossy(&bytes).into_owned()
}

/// 400 seeded mutations against the dispatch directly: every frame must
/// produce exactly one reply that parses back as a response envelope, with
/// protocol-or-domain categories on failures — and the service must still
/// classify afterwards.
#[test]
fn fuzzed_frames_always_get_structured_replies() {
    let service = Service::new(Engine::builder().parallelism(2).build());
    let seeds = seed_frames();
    let mut rng = StdRng::seed_from_u64(0x1c1_5e7f);
    let mut error_replies = 0u32;
    for round in 0..400 {
        let base = &seeds[rng.gen_range(0..seeds.len())];
        let frame = mutate(&mut rng, base);
        let reply = service.handle_line(&frame);
        // The reply must serialize and parse back as a valid envelope.
        let parsed = ResponseEnvelope::from_json_str(&reply.to_json_string())
            .unwrap_or_else(|e| panic!("round {round}: unparseable reply ({e}) for {frame:?}"));
        if let Err(error) = parsed.result {
            error_replies += 1;
            assert!(
                !error.category.is_empty() && !error.message.is_empty(),
                "round {round}: empty error structure for {frame:?}"
            );
        }
    }
    assert!(
        error_replies > 100,
        "the mutator should produce plenty of rejects, got {error_replies}"
    );

    // The pool and cache survived the bombardment.
    let verdicts = service
        .engine()
        .classify_many(&[problems::coloring(3), problems::coloring(2)]);
    assert!(verdicts.iter().all(Result::is_ok));
    let health = service.handle_line(r#"{"v":1,"id":9,"kind":"health"}"#);
    assert!(health.is_ok(), "service must stay healthy after fuzzing");
}

/// Oversized frames are rejected with a structured reply and the stream
/// keeps serving (stdio framing harness).
#[test]
fn oversized_frames_are_rejected_but_not_fatal() {
    let service = Service::new(Engine::builder().parallelism(1).build());
    let mut input = Vec::new();
    input.extend_from_slice(&vec![b'a'; MAX_FRAME_BYTES + 16]);
    input.push(b'\n');
    input.extend_from_slice(b"{\"v\":1,\"id\":2,\"kind\":\"health\"}\n");
    let mut output = Vec::new();
    serve_stdio(&service, input.as_slice(), &mut output).expect("stdio serve");

    let text = String::from_utf8(output).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    let rejected = ResponseEnvelope::from_json_str(lines[0]).unwrap();
    let error = rejected.result.expect_err("oversized frame must fail");
    assert_eq!(error.category, "protocol");
    assert!(error.message.contains("exceeds"), "{}", error.message);
    let health = ResponseEnvelope::from_json_str(lines[1]).unwrap();
    assert_eq!(health.id, Some(2));
    assert!(health.is_ok(), "stream must survive the oversized frame");
}

/// Malformed frames *inside a pipelined burst*: the whole mixed burst is
/// written before any reply is read, over a deliberately small in-flight
/// window. Every non-blank frame must get exactly one reply, in frame
/// order; the known-good frames must succeed with their ids echoed; and the
/// connection and window must survive and drain.
#[test]
fn pipelined_burst_interleaving_malformed_frames_survives() {
    let service = Arc::new(Service::new(Engine::builder().parallelism(2).build()));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind")
        .max_inflight(4);
    let handle = server.start().expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let seeds = seed_frames();
    let mut rng = StdRng::seed_from_u64(0x10_aded_c0de);
    // Some(id): a known-good classify that must succeed with this id echoed.
    // None: hostile (mutated or oversized) — only "one parseable reply" is
    // guaranteed (a mutation can coincidentally stay well-formed).
    let mut frames: Vec<(String, Option<i64>)> = Vec::new();
    for round in 0..60i64 {
        match round % 3 {
            0 => {
                let k = 2 + (round % 4) as usize;
                let payload =
                    JsonValue::object([("problem", problems::coloring(k).to_spec().to_json())]);
                let id = 7000 + round;
                frames.push((
                    RequestEnvelope::new(id, "classify", payload).to_json_string(),
                    Some(id),
                ));
            }
            1 if round == 31 => {
                // One oversized line mid-burst: rejected, not fatal.
                frames.push(("x".repeat(MAX_FRAME_BYTES + 17), None));
            }
            _ => {
                let base = &seeds[rng.gen_range(0..seeds.len())];
                let frame = mutate(&mut rng, base);
                if frame.trim().is_empty() {
                    continue; // blank frames get no reply by design
                }
                frames.push((frame, None));
            }
        }
    }

    // Flood the entire mixed burst before reading anything.
    for (frame, _) in &frames {
        client.send_frame(frame).expect("send burst frame");
    }
    let mut rejects = 0u32;
    for (frame, expectation) in &frames {
        let reply = client.recv_frame().expect("every frame gets a reply");
        let parsed = ResponseEnvelope::from_json_str(&reply)
            .unwrap_or_else(|e| panic!("unparseable reply ({e}) for {frame:?}"));
        match expectation {
            Some(id) => {
                assert_eq!(parsed.id, Some(*id), "good frames echo ids in order");
                assert!(parsed.is_ok(), "good frame rejected: {reply}");
            }
            None => {
                if !parsed.is_ok() {
                    rejects += 1;
                }
            }
        }
    }
    assert!(
        rejects > 10,
        "the mutator should produce rejects: {rejects}"
    );

    // The window drained and the connection still classifies.
    let verdict = client
        .classify(&problems::coloring(3).to_spec())
        .expect("connection survives the mixed burst");
    assert_eq!(verdict.complexity.wire_name(), "log-star");
    assert_eq!(service.metrics().pipelined_inflight(), 0, "window drained");
    drop(client);
    handle.shutdown();
}

/// The same robustness over a real TCP connection: garbage frames, then a
/// well-formed request on the very same socket.
#[test]
fn tcp_connection_survives_fuzzed_frames() {
    let service = Arc::new(Service::new(Engine::builder().parallelism(1).build()));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let handle = server.start().expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let seeds = seed_frames();
    let mut rng = StdRng::seed_from_u64(0xbadf00d);
    for _ in 0..50 {
        let base = &seeds[rng.gen_range(0..seeds.len())];
        let frame = mutate(&mut rng, base);
        if frame.trim().is_empty() {
            continue; // blank frames get no reply by design
        }
        client.send_frame(&frame).expect("send fuzzed frame");
        let reply = client.recv_frame().expect("every frame gets a reply");
        ResponseEnvelope::from_json_str(&reply).expect("reply parses");
    }

    let verdict = client
        .classify(&problems::coloring(3).to_spec())
        .expect("connection must survive the fuzz loop");
    assert_eq!(verdict.complexity.wire_name(), "log-star");
    drop(client);
    handle.shutdown();
}
