//! Observability integration tests: the `metrics` request kind, the HTTP
//! scrape listener, the latency histograms and the stage-trace ring, driven
//! end-to-end through every front-end (both TCP backends and stdio).

use lcl_paths::classifier::obs::TraceRecord;
use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{
    Instance, RequestEnvelope, ResponseEnvelope, StreamInputs, StreamInstanceSpec, Topology,
};
use lcl_paths::{problems, Engine};
use lcl_server::{
    serve_stdio, validate_exposition, AdmissionConfig, Backend, Client, MetricsListener, Server,
    Service, TraceSink, MAX_FRAME_BYTES,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// Every TCP backend available on this platform (both on Linux).
fn backends() -> Vec<Backend> {
    [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

/// A fresh service with a pinned, platform-independent configuration so
/// two runs produce comparable counter state.
fn service() -> Arc<Service> {
    Arc::new(Service::new(
        Engine::builder().parallelism(2).cache_shards(2).build(),
    ))
}

/// Drives the same small workload through one connection: three classifies
/// (one repeated, so the cache hits), a solve, a streamed solve and a
/// health probe.
fn drive_workload(client: &mut Client) {
    let spec = problems::coloring(3).to_spec();
    client.classify(&spec).expect("classify");
    client.classify(&spec).expect("classify again (cache hit)");
    client
        .classify(&problems::coloring(4).to_spec())
        .expect("classify a second problem");
    let instance = Instance::from_indices(Topology::Cycle, &[0; 12]);
    client.solve(&spec, &instance).expect("solve");
    let stream = StreamInstanceSpec {
        topology: Topology::Cycle,
        length: 64,
        inputs: StreamInputs::Uniform { label: 0 },
    };
    client
        .solve_stream(&spec, &stream, |_, _| {})
        .expect("solve_stream");
    client.health().expect("health");
}

/// Extracts the value of the unique sample line starting with `prefix `.
fn sample_value(expo: &str, prefix: &str) -> u64 {
    let matches: Vec<&str> = expo
        .lines()
        .filter(|line| {
            line.strip_prefix(prefix)
                .is_some_and(|r| r.starts_with(' '))
        })
        .collect();
    assert_eq!(matches.len(), 1, "expected exactly one `{prefix}` sample");
    matches[0]
        .rsplit_once(' ')
        .expect("sample has a value")
        .1
        .parse()
        .expect("sample value parses")
}

#[test]
fn the_metrics_kind_serves_a_valid_exposition_on_every_tcp_backend() {
    for backend in backends() {
        let handle = Server::bind(service(), "127.0.0.1:0")
            .expect("bind")
            .backend(backend)
            .start()
            .expect("start");
        let mut client = Client::connect(handle.addr()).expect("connect");
        drive_workload(&mut client);

        let expo = client.metrics().expect("metrics round-trip");
        validate_exposition(&expo).unwrap_or_else(|e| panic!("[{backend}] invalid: {e}"));

        // Counters reflect the workload exactly.
        assert_eq!(
            sample_value(&expo, "lcl_requests_total{kind=\"classify\"}"),
            3
        );
        assert_eq!(sample_value(&expo, "lcl_requests_total{kind=\"solve\"}"), 1);
        assert_eq!(
            sample_value(&expo, "lcl_requests_total{kind=\"solve_stream\"}"),
            1
        );
        assert_eq!(
            sample_value(&expo, "lcl_requests_total{kind=\"health\"}"),
            1
        );
        // The metrics request renders before recording itself.
        assert_eq!(
            sample_value(&expo, "lcl_requests_total{kind=\"metrics\"}"),
            0
        );
        // One hit from the repeated classify, one each from solve and
        // solve_stream re-consulting the cache for the same problem.
        assert_eq!(sample_value(&expo, "lcl_cache_hits_total"), 3);
        // The repeated classify took the zero-serialization lane: its hit
        // rendered and attached the reply bytes (one bytes miss, no reuse
        // yet) and went out as a spliced frame.
        assert_eq!(sample_value(&expo, "lcl_cache_bytes_misses_total"), 1);
        assert_eq!(sample_value(&expo, "lcl_cache_bytes_hits_total"), 0);
        assert_eq!(sample_value(&expo, "lcl_spliced_frames_total"), 1);
        assert_eq!(
            format!("{backend}"),
            expo.lines()
                .find(|l| l.starts_with("lcl_build_info{"))
                .and_then(|l| l.split("backend=\"").nth(1))
                .and_then(|l| l.split('"').next())
                .expect("build_info carries the backend label"),
        );

        // Every kind's latency histogram count equals its request counter —
        // the histograms observe exactly the accounted frames.
        for kind in [
            "classify",
            "classify_many",
            "solve",
            "solve_stream",
            "generate",
            "stats",
            "health",
            "metrics",
            "snapshot",
            "invalid",
        ] {
            assert_eq!(
                sample_value(
                    &expo,
                    &format!("lcl_request_latency_micros_count{{kind=\"{kind}\"}}")
                ),
                sample_value(&expo, &format!("lcl_requests_total{{kind=\"{kind}\"}}")),
                "[{backend}] histogram/counter mismatch for `{kind}`"
            );
            // Admission is not configured here: the shed family renders for
            // every kind and every sample is zero.
            assert_eq!(
                sample_value(&expo, &format!("lcl_shed_total{{kind=\"{kind}\"}}")),
                0,
                "[{backend}] nothing sheds below the (disabled) thresholds"
            );
        }

        // The streamed solve recorded its time-to-first-chunk separately.
        assert_eq!(
            sample_value(&expo, "lcl_stream_first_chunk_micros_count"),
            1
        );
        assert!(sample_value(&expo, "lcl_stream_first_chunk_micros_sum") >= 1);

        handle.shutdown();
    }
}

/// The families whose values are a deterministic function of the driven
/// workload — no wall clock, no backend-internal counters.
fn deterministic_lines(expo: &str) -> String {
    const FAMILIES: [&str; 5] = [
        "lcl_requests_total",
        "lcl_request_errors_total",
        "lcl_cache_",
        "lcl_pool_workers",
        "lcl_connections_accepted_total",
    ];
    expo.lines()
        .filter(|line| {
            line.starts_with("# ") || FAMILIES.iter().any(|family| line.starts_with(family))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn identical_workloads_render_identical_counter_lines_on_every_backend() {
    let documents: Vec<(Backend, String)> = backends()
        .into_iter()
        .map(|backend| {
            let handle = Server::bind(service(), "127.0.0.1:0")
                .expect("bind")
                .backend(backend)
                .start()
                .expect("start");
            let mut client = Client::connect(handle.addr()).expect("connect");
            drive_workload(&mut client);
            let expo = client.metrics().expect("metrics");
            handle.shutdown();
            (backend, expo)
        })
        .collect();
    let (first_backend, first) = &documents[0];
    for (backend, expo) in &documents[1..] {
        assert_eq!(
            deterministic_lines(first),
            deterministic_lines(expo),
            "{first_backend} and {backend} disagree on deterministic counter lines"
        );
    }
}

#[test]
fn the_exposition_agrees_with_the_json_stats_when_quiesced() {
    let handle = Server::bind(service(), "127.0.0.1:0")
        .expect("bind")
        .start()
        .expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    drive_workload(&mut client);

    let stats = client.stats().expect("stats");
    let expo = client.metrics().expect("metrics");
    validate_exposition(&expo).expect("valid exposition");

    let kinds = stats
        .require("server")
        .and_then(|s| s.require("kinds"))
        .expect("stats has server.kinds");
    // Compare the kinds the workload drove before either snapshot was
    // taken; `stats` and `metrics` each record themselves only after
    // building their own reply, so those two counters race the snapshots.
    for kind in ["classify", "solve", "solve_stream", "health", "invalid"] {
        let from_stats = kinds
            .require(kind)
            .and_then(|k| k.require("count"))
            .unwrap_or_else(|e| panic!("stats kinds.{kind}.count: {e}"))
            .as_int()
            .expect("count is an int") as u64;
        let from_expo = sample_value(&expo, &format!("lcl_requests_total{{kind=\"{kind}\"}}"));
        assert_eq!(from_stats, from_expo, "count mismatch for `{kind}`");
    }
    let cache = stats.require("cache").expect("stats has cache");
    for (field, family) in [
        ("hits", "lcl_cache_hits_total"),
        ("misses", "lcl_cache_misses_total"),
        ("entries", "lcl_cache_entries"),
        ("inserts", "lcl_cache_inserts_total"),
        ("fast_hits", "lcl_cache_fast_hits_total"),
        ("locked_hits", "lcl_cache_locked_hits_total"),
        ("flight_leaders", "lcl_cache_flight_leaders_total"),
        ("flight_joins", "lcl_cache_flight_joins_total"),
        ("bytes_hits", "lcl_cache_bytes_hits_total"),
        ("bytes_misses", "lcl_cache_bytes_misses_total"),
    ] {
        assert_eq!(
            cache.require(field).unwrap().as_int().unwrap() as u64,
            sample_value(&expo, family),
            "cache `{field}` disagrees with `{family}`"
        );
    }
    // Every hit is exactly one of fast, locked, or joined — in the JSON
    // reply just as in each per-shard snapshot.
    assert_eq!(
        cache.require("hits").unwrap().as_int().unwrap(),
        cache.require("fast_hits").unwrap().as_int().unwrap()
            + cache.require("locked_hits").unwrap().as_int().unwrap()
            + cache.require("flight_joins").unwrap().as_int().unwrap(),
    );
    // Single-connection workload: every computation was a leader, nothing
    // had anyone to join.
    assert_eq!(
        cache.require("flight_leaders").unwrap().as_int().unwrap() as u64,
        sample_value(&expo, "lcl_cache_misses_total"),
    );

    // The satellite `server` block carries the identity fields.
    let server = stats.require("server").expect("server block");
    // The splice counter is quiesced (stats/metrics requests never splice);
    // the writev counter keeps ticking as replies flush, so it can only
    // have grown between the two snapshots.
    assert_eq!(
        server.require("spliced_frames").unwrap().as_int().unwrap() as u64,
        sample_value(&expo, "lcl_spliced_frames_total"),
    );
    assert!(
        sample_value(&expo, "lcl_writev_batches_total")
            >= server.require("writev_batches").unwrap().as_int().unwrap() as u64
    );
    assert_eq!(
        server.require("version").unwrap().as_str().unwrap(),
        env!("CARGO_PKG_VERSION")
    );
    assert_eq!(
        server.require("workers").unwrap().as_int().unwrap(),
        2,
        "pinned worker count"
    );
    assert!(server.require("uptime_seconds").unwrap().as_int().unwrap() >= 0);
    assert!(server.require("backend").unwrap().as_str().is_ok());
    handle.shutdown();
}

#[test]
fn the_http_scrape_serves_the_same_document_as_the_protocol() {
    // Unlike an HTTP scrape, the protocol request is itself in flight
    // while it renders: it holds a pipeline slot and cost the reactor some
    // wakeups. Those gauges — and the wall clock — are the only lines that
    // may differ.
    fn strip_volatile(expo: &str) -> String {
        const VOLATILE: [&str; 4] = [
            "lcl_uptime_seconds ",
            "lcl_pipeline_inflight ",
            "lcl_reactor_wakeups_total ",
            "lcl_reactor_completions_total ",
        ];
        expo.lines()
            .filter(|line| !VOLATILE.iter().any(|v| line.starts_with(v)))
            .collect::<Vec<_>>()
            .join("\n")
    }
    let service = service();
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind")
        .start()
        .expect("start");
    let listener = MetricsListener::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind scrape");
    let mut client = Client::connect(handle.addr()).expect("connect");
    drive_workload(&mut client);

    let mut stream = TcpStream::connect(listener.addr()).expect("connect scrape");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, scraped) = response.split_once("\r\n\r\n").expect("http framing");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    validate_exposition(scraped).expect("scraped document validates");

    // A scrape records nothing, and the protocol reply renders before
    // recording itself, so the two documents agree on every counter.
    let via_protocol = client.metrics().expect("metrics");
    assert_eq!(strip_volatile(scraped), strip_volatile(&via_protocol));
    handle.shutdown();
}

#[test]
fn oversized_frames_record_nonzero_invalid_latency_on_every_front_end() {
    let oversized = "x".repeat(MAX_FRAME_BYTES + 16);

    for backend in backends() {
        let handle = Server::bind(service(), "127.0.0.1:0")
            .expect("bind")
            .backend(backend)
            .start()
            .expect("start");
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.send_frame(&oversized).expect("send oversized");
        let reply = client.recv_frame().expect("rejection reply");
        let envelope = ResponseEnvelope::from_json_str(&reply).expect("structured reply");
        assert!(!envelope.is_ok(), "oversized frames are rejected");

        let expo = client.metrics().expect("metrics");
        assert_eq!(
            sample_value(&expo, "lcl_requests_total{kind=\"invalid\"}"),
            1,
            "[{backend}] the rejection is accounted"
        );
        assert_eq!(
            sample_value(&expo, "lcl_request_latency_micros_count{kind=\"invalid\"}"),
            1,
            "[{backend}] the rejection reaches the histogram"
        );
        assert!(
            sample_value(&expo, "lcl_request_latency_micros_sum{kind=\"invalid\"}") >= 1,
            "[{backend}] accounted latency is never zero"
        );
        handle.shutdown();
    }

    // The stdio front-end too: same frame, same accounting.
    let service = service();
    let input = format!(
        "{oversized}\n{}\n",
        RequestEnvelope::new(1, "metrics", JsonValue::Null).to_json_string()
    );
    let mut output = Vec::new();
    serve_stdio(&service, input.as_bytes(), &mut output).expect("stdio session");
    let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
    assert_eq!(lines.len(), 2);
    let reply = ResponseEnvelope::from_json_str(lines[1]).expect("metrics reply");
    let expo = reply
        .result
        .expect("metrics is ok")
        .require("exposition")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    validate_exposition(&expo).expect("stdio exposition validates");
    assert_eq!(
        sample_value(&expo, "lcl_requests_total{kind=\"invalid\"}"),
        1
    );
    assert!(sample_value(&expo, "lcl_request_latency_micros_sum{kind=\"invalid\"}") >= 1);
    assert!(expo.contains("lcl_build_info{backend=\"stdio\""));
}

#[test]
fn shed_frames_stay_in_the_latency_accounting_on_every_backend() {
    for backend in backends() {
        let service = Arc::new(
            Service::new(Engine::builder().parallelism(2).cache_shards(2).build()).with_admission(
                AdmissionConfig {
                    quota_rps: 1,
                    quota_burst: 2,
                    ..AdmissionConfig::default()
                },
            ),
        );
        // The splice lane legitimately bypasses admission; keep every frame
        // on the quota'd path so the shed count is predictable.
        service.set_reply_splice(false);
        let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
            .expect("bind")
            .backend(backend)
            .start()
            .expect("start");
        let mut client = Client::connect(handle.addr()).expect("connect");

        // Flood eight distinct problems down one pipelined connection: the
        // burst of two admits the head, the rest shed.
        let specs: Vec<_> = (2..=9).map(|k| problems::coloring(k).to_spec()).collect();
        let outcomes = client
            .classify_many_pipelined(&specs, 0)
            .expect("pipelined flood");
        let shed = outcomes.iter().filter(|o| o.is_err()).count();
        assert!(shed >= 1, "[{backend}] the flood must shed something");
        for outcome in &outcomes {
            if let Err(error) = outcome {
                assert_eq!(error.category, "overloaded", "[{backend}]");
                assert_eq!(error.retryable, Some(true), "[{backend}]");
                assert!(
                    error.retry_after_millis.unwrap_or(0) >= 1,
                    "[{backend}] sheds carry a retry hint"
                );
            }
        }

        let expo = client.metrics().expect("metrics");
        validate_exposition(&expo).unwrap_or_else(|e| panic!("[{backend}] invalid: {e}"));
        // The shed counter, the request counter, the error counter and the
        // latency histogram must all agree on what happened: a shed frame
        // is accounted exactly like a served one.
        assert_eq!(
            sample_value(&expo, "lcl_shed_total{kind=\"classify\"}"),
            shed as u64,
            "[{backend}]"
        );
        assert_eq!(
            sample_value(&expo, "lcl_requests_total{kind=\"classify\"}"),
            specs.len() as u64,
            "[{backend}] shed frames stay in requests_total"
        );
        assert!(
            sample_value(&expo, "lcl_request_errors_total{kind=\"classify\"}") >= shed as u64,
            "[{backend}] shed frames are errors"
        );
        assert_eq!(
            sample_value(&expo, "lcl_request_latency_micros_count{kind=\"classify\"}"),
            sample_value(&expo, "lcl_requests_total{kind=\"classify\"}"),
            "[{backend}] shed frames reach the histogram"
        );
        handle.shutdown();
    }
}

#[test]
fn stage_traces_reach_the_ring_and_the_slow_log_on_stdio() {
    let captured: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let captured_in_sink = Arc::clone(&captured);
    let sink = Arc::new(TraceSink::with_emitter(64, move |line| {
        captured_in_sink.lock().unwrap().push(line.to_string());
    }));
    sink.set_slow_micros(Some(1)); // everything is slow
    let service = Service::new(Engine::builder().parallelism(1).build()).with_trace_sink(sink);

    let spec = problems::coloring(3).to_spec();
    let classify = RequestEnvelope::new(
        7,
        "classify",
        JsonValue::object([("problem", spec.to_json())]),
    )
    .to_json_string();
    let input = format!("{classify}\nnot json at all\n");
    let mut output = Vec::new();
    serve_stdio(&service, input.as_bytes(), &mut output).expect("stdio session");

    let records: Vec<TraceRecord> = service.trace_sink().recent();
    assert_eq!(records.len(), 2, "one trace per frame");
    // recent() is oldest-first: the classify, then the unparseable frame.
    assert_eq!(records[0].id, Some(7));
    assert!(records[0].ok);
    // The lock-step (caller-context) path cannot observe where its
    // classification came from; only the pooled path attributes hits.
    assert_eq!(records[0].cache_hit, None);
    assert!(records[0].problem_hash.is_some());
    assert_eq!(records[1].kind, TraceRecord::KIND_INVALID);
    assert!(!records[1].ok);
    for record in &records {
        assert!(record.total_micros >= 1, "traces never report zero latency");
        let stage_sum = record.queue_micros
            + record.parse_micros
            + record.compute_micros
            + record.serialize_micros
            + record.write_micros;
        assert!(
            stage_sum <= record.total_micros,
            "disjoint stages cannot exceed the end-to-end time"
        );
    }

    // Both requests crossed the slow threshold; each line is one JSON
    // object with the stage breakdown.
    let lines = captured.lock().unwrap();
    assert_eq!(lines.len(), 2);
    for line in lines.iter() {
        let parsed = JsonValue::parse(line).expect("slow line is valid JSON");
        assert_eq!(parsed.require("trace").unwrap().as_str().unwrap(), "slow");
        for field in [
            "kind",
            "queue_micros",
            "parse_micros",
            "compute_micros",
            "serialize_micros",
            "write_micros",
            "total_micros",
        ] {
            assert!(parsed.get(field).is_some(), "missing `{field}`: {line}");
        }
    }
    let kinds: Vec<String> = lines
        .iter()
        .map(|line| {
            JsonValue::parse(line)
                .unwrap()
                .require("kind")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(kinds, ["classify", "invalid"]);
}

#[test]
fn tcp_traces_capture_the_write_stage() {
    let service = service();
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind")
        .start()
        .expect("start");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client
        .classify(&problems::coloring(3).to_spec())
        .expect("classify");
    // The write stage is stamped when the reply's bytes reach the socket;
    // the client has the reply in hand, so the stamp happened — but the
    // recording into the ring races the reply by one scheduler step on the
    // reactor (the flush observes the write after EPOLLOUT). Poll briefly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    let record = loop {
        let records = service.trace_sink().recent();
        if let Some(record) = records.iter().find(|r| r.kind != TraceRecord::KIND_INVALID) {
            break *record;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "classify trace never reached the ring"
        );
        std::thread::yield_now();
    };
    assert!(record.ok);
    assert!(record.total_micros >= 1);
    handle.shutdown();
}
