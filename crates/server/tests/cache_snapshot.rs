//! Warm-cache snapshot/restore integration tests: a snapshot taken over the
//! wire mid-flood restores into a fresh engine with byte-identical
//! verdicts, the cache accounting invariant survives a restore, and
//! corrupt, truncated or version-skewed files are rejected without ever
//! panicking or failing startup.

use lcl_paths::{problems, Engine};
use lcl_server::{Client, RequestKind, Server, Service};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

/// A unique per-test temp directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("lcl-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn service_with_path(path: PathBuf) -> Arc<Service> {
    Arc::new(
        Service::new(Engine::builder().parallelism(2).cache_shards(2).build())
            .with_cache_snapshot_path(path),
    )
}

fn classify_line(id: i64, colors: usize) -> String {
    let spec = problems::coloring(colors).to_spec();
    let payload = lcl_paths::problem::json::JsonValue::object([("problem", spec.to_json())]);
    lcl_paths::problem::RequestEnvelope::new(id, "classify", payload).to_json_string()
}

#[test]
fn a_snapshot_taken_under_live_traffic_restores_byte_identical_verdicts() {
    let dir = TempDir::new("live");
    let path = dir.path("cache.snapshot");
    let service = service_with_path(path.clone());
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind")
        .start()
        .expect("start");
    let addr = handle.addr();

    // A background flood keeps classifications (and cache writes) in flight
    // while snapshots are taken over the wire.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood_stop = Arc::clone(&stop);
    let flood = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("flood connect");
        let mut k = 2usize;
        while !flood_stop.load(std::sync::atomic::Ordering::Relaxed) {
            let _ = client.classify(&problems::coloring(2 + (k % 12)).to_spec());
            k += 1;
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    // Guarantee some warmth regardless of flood scheduling, then snapshot
    // repeatedly while the flood mutates the cache under the writer.
    for k in 2..=6 {
        client
            .classify(&problems::coloring(k).to_spec())
            .expect("warm classify");
    }
    let mut entries = 0i64;
    for _ in 0..5 {
        let written = client
            .call("snapshot", lcl_paths::problem::json::JsonValue::object([]))
            .expect("snapshot under flood");
        entries = written.require("entries").unwrap().as_int().unwrap();
        assert!(entries >= 5, "snapshot saw the warmed entries");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    flood.join().expect("flood thread");
    handle.shutdown();

    // Restore into a fresh engine: the snapshotted problems must answer
    // byte-for-byte what a cold computation answers, and from the cache.
    let restored = service_with_path(path.clone());
    let summary = restored
        .restore_cache_snapshot()
        .expect("path configured and file present")
        .expect("snapshot restores");
    assert!(summary.contains("restored"), "{summary}");
    let cold = service_with_path(dir.path("unused.snapshot"));
    let stats_before = restored.engine().cache_stats();
    assert_eq!(stats_before.entries as i64, entries);
    for (id, k) in (2..=6).enumerate() {
        let line = classify_line(id as i64, k);
        assert_eq!(
            restored.handle_line_string(&line),
            cold.handle_line_string(&line),
            "restored and cold verdicts must serialize identically"
        );
    }
    let stats = restored.engine().cache_stats();
    assert_eq!(
        stats.hits,
        stats_before.hits + 5,
        "every restored problem answered from the cache"
    );

    // The accounting invariant holds after a restore, exactly as it does
    // for organically inserted entries.
    assert_eq!(
        stats.entries as u64 + stats.evictions,
        stats.inserts,
        "entries + evictions == inserts after restore"
    );
}

#[test]
fn restored_warmth_survives_capacity_pressure_with_the_invariant_intact() {
    let dir = TempDir::new("pressure");
    let path = dir.path("cache.snapshot");
    // Warm more entries than the restore target's capacity will hold.
    let writer = service_with_path(path.clone());
    for k in 2..=11 {
        assert!(writer.handle_line(&classify_line(k as i64, k)).is_ok());
    }
    assert!(writer.write_cache_snapshot().unwrap().is_ok());

    // A 4-entry cache restores what fits; the rest are evictions, never an
    // accounting leak.
    let tight = Arc::new(
        Service::new(
            Engine::builder()
                .parallelism(2)
                .cache_shards(2)
                .cache_capacity(4)
                .build(),
        )
        .with_cache_snapshot_path(path),
    );
    tight
        .restore_cache_snapshot()
        .expect("file present")
        .expect("restore under pressure succeeds");
    let stats = tight.engine().cache_stats();
    assert!(stats.entries <= 4, "capacity bound holds after restore");
    assert_eq!(stats.entries as u64 + stats.evictions, stats.inserts);
}

#[test]
fn corrupt_truncated_and_version_skewed_snapshots_never_panic_or_serve() {
    let dir = TempDir::new("corrupt");
    let path = dir.path("cache.snapshot");
    let writer = service_with_path(path.clone());
    for k in 2..=6 {
        assert!(writer.handle_line(&classify_line(k as i64, k)).is_ok());
    }
    writer
        .write_cache_snapshot()
        .expect("path configured")
        .expect("snapshot writes");
    let good = std::fs::read_to_string(&path).expect("read snapshot");

    // Truncated mid-document (no trailer), flipped checksum, version skew,
    // outright garbage, and an empty file: every one is reported and
    // ignored, and the service then works cold.
    let header_end = good.find('\n').expect("header line") + 1;
    let cases: Vec<(String, String)> = vec![
        ("truncated".into(), good[..good.len() * 2 / 3].to_string()),
        (
            "checksum-flip".into(),
            good.replacen("\"checksum\":\"", "\"checksum\":\"f", 1),
        ),
        (
            "version-skew".into(),
            good.replacen("\"version\":1", "\"version\":999", 1),
        ),
        ("garbage".into(), "not a snapshot at all\n".to_string()),
        ("empty".into(), String::new()),
        ("header-only".into(), good[..header_end].to_string()),
    ];
    for (tag, document) in cases {
        std::fs::write(&path, document).expect("write corrupt snapshot");
        let victim = service_with_path(path.clone());
        let error = victim
            .restore_cache_snapshot()
            .expect("file present")
            .expect_err("corrupt snapshot must be rejected");
        assert!(error.contains("ignoring cache snapshot"), "[{tag}] {error}");
        // Startup continues cold: nothing restored, service fully usable.
        assert_eq!(victim.engine().cache_stats().entries, 0, "[{tag}]");
        assert!(
            victim.handle_line(&classify_line(1, 3)).is_ok(),
            "[{tag}] the service must serve after a rejected snapshot"
        );
    }

    // A missing file is not an error at all — first boot is silent.
    let fresh = service_with_path(dir.path("never-written.snapshot"));
    assert!(fresh.restore_cache_snapshot().is_none());

    // The snapshot kind is part of the wire surface.
    assert_eq!(RequestKind::Snapshot.wire_name(), "snapshot");
}
