//! Overload soak: flood each TCP backend far past the worker pool's
//! capacity with queue-depth shedding armed. Every frame must come back as
//! either a verdict or a structured retryable `overloaded` rejection — no
//! deadlock, no connection loss, no unstructured failure — and once the
//! flood drains the server must admit work again.

use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{Instance, RequestEnvelope, ResponseEnvelope, Topology};
use lcl_paths::{problems, Engine};
use lcl_server::{AdmissionConfig, Backend, Client, Server, Service};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn backends() -> Vec<Backend> {
    [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

#[test]
fn a_flood_past_capacity_sheds_structurally_and_recovers() {
    const FLOOD: usize = 200;
    for backend in backends() {
        // One worker and a shallow shed threshold: the pipelined flood
        // below outruns the pool by construction.
        let service = Arc::new(
            Service::new(Engine::builder().parallelism(1).cache_shards(1).build()).with_admission(
                AdmissionConfig {
                    shed_queue_depth: 4,
                    ..AdmissionConfig::default()
                },
            ),
        );
        // Cache hits would bypass the pool (and the queue) on the splice
        // lane; keep every frame on the dispatch path.
        service.set_reply_splice(false);
        let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
            .expect("bind")
            .backend(backend)
            .start()
            .expect("start");
        // Blast the whole flood from a side thread while this one reads
        // replies: the sender never waits on a reply, so the arrival rate
        // outruns the one worker and the queue trips the shed threshold.
        // (Reading concurrently matters — with both directions' kernel
        // buffers finite, a send-everything-then-read client and the
        // server's reply stream would backpressure each other to a halt.)
        let stream = std::net::TcpStream::connect(handle.addr()).expect("connect flood");
        stream.set_nodelay(true).expect("nodelay");
        let mut flood_writer = stream.try_clone().expect("clone flood writer");
        let sender = std::thread::spawn(move || {
            use std::io::Write;
            // The head of the flood is a handful of slow solves (a few
            // hundred LOCAL rounds each on one worker): they pin the pool
            // while the classify flood behind them piles into the queue and
            // trips the threshold. The classifies cycle through a few cheap
            // specs — arrival rate is what matters, not per-frame cost.
            let spec = problems::coloring(3).to_spec();
            let instance = Instance::from_indices(Topology::Cycle, &[0; 400]);
            for id in 0..FLOOD {
                let mut line = if id < 4 {
                    RequestEnvelope::new(
                        id as i64,
                        "solve",
                        JsonValue::object([
                            ("problem", spec.to_json()),
                            ("instance", instance.to_json()),
                        ]),
                    )
                    .to_json_string()
                } else {
                    let spec = problems::coloring(2 + (id % 8)).to_spec();
                    RequestEnvelope::new(
                        id as i64,
                        "classify",
                        JsonValue::object([("problem", spec.to_json())]),
                    )
                    .to_json_string()
                };
                line.push('\n');
                flood_writer.write_all(line.as_bytes()).expect("flood send");
            }
            flood_writer.flush().expect("flood flush");
        });

        let mut reader = std::io::BufReader::new(stream);
        let mut served = 0usize;
        let mut shed = 0usize;
        for id in 0..FLOOD {
            use std::io::BufRead;
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("flood reply") > 0,
                "[{backend}] connection closed mid-flood"
            );
            let reply = ResponseEnvelope::from_json_str(line.trim_end()).expect("structured reply");
            assert_eq!(reply.id, Some(id as i64), "[{backend}] in-order replies");
            match reply.result {
                Ok(_) => served += 1,
                Err(error) => {
                    assert_eq!(
                        error.category, "overloaded",
                        "[{backend}] the only failure mode under flood is a shed: {}",
                        error.message
                    );
                    assert_eq!(error.retryable, Some(true), "[{backend}]");
                    assert!(
                        error.retry_after_millis.unwrap_or(0) >= 1,
                        "[{backend}] sheds carry a retry hint"
                    );
                    shed += 1;
                }
            }
        }
        assert_eq!(served + shed, FLOOD, "[{backend}] every frame answered");
        assert!(served >= 1, "[{backend}] the pool kept serving under flood");
        assert!(
            shed >= 1,
            "[{backend}] a {FLOOD}-frame flood against one worker must shed"
        );

        sender.join().expect("flood sender");
        drop(reader);

        // Recovery: once the backlog drains, fresh work is admitted again.
        // Poll briefly — the queue empties as fast as the worker finishes.
        let mut client = Client::connect(handle.addr()).expect("connect after flood");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.classify(&problems::coloring(3).to_spec()) {
                Ok(verdict) => {
                    assert_eq!(verdict.complexity.wire_name(), "log-star");
                    break;
                }
                Err(lcl_server::ClientError::Remote(error))
                    if error.category == "overloaded" && Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(
                        error.retry_after_millis.unwrap_or(10),
                    ));
                }
                Err(e) => panic!("[{backend}] server did not recover: {e}"),
            }
        }

        // The connection and the control plane survived the whole episode.
        let health = client.health().expect("health after flood");
        assert_eq!(health.require("status").unwrap().as_str().unwrap(), "ok");
        handle.shutdown();
    }
}
