//! The Lemma 16 decomposition: splitting a cycle into `A`-blocks of an exact
//! constant size `s` and `B`-blocks of size `k` or `k + 1`.
//!
//! The distributed part (finding sufficiently well-spaced anchors in
//! `O(log* n)` rounds) lives in [`crate::ruling`]; this module implements the
//! purely local subdivision step from the lemma's proof: given anchor
//! positions whose consecutive gaps are at least `k·(s + k + 1)`, each segment
//! between consecutive anchors is cut into pieces
//! `R_1, R_2, …, R_t` with odd-indexed pieces of size `k` or `k + 1`
//! (the `B`-blocks) and even-indexed pieces of size exactly `s`
//! (the `A`-blocks), with `t` odd.

use std::fmt;

/// Whether a position belongs to an `A`-block or a `B`-block.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Member of an `A`-block (size exactly `s`).
    A,
    /// Member of a `B`-block (size `k` or `k + 1`).
    B,
}

/// A complete decomposition of a cycle: the kind of every position and the
/// list of blocks as `(start, len, kind)` triples in cyclic order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    /// Kind of each position.
    pub kind_of: Vec<BlockKind>,
    /// Blocks in cyclic order.
    pub blocks: Vec<(usize, usize, BlockKind)>,
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocks over {} nodes",
            self.blocks.len(),
            self.kind_of.len()
        )
    }
}

/// Splits one segment of length `z ≥ (s + k + 1)²` into piece sizes
/// `[b_1, s, b_2, s, …, b_m]` with each `b_i ∈ {k, k+1}` and alternating
/// `A`/`B` kinds (the `B` pieces are the `b_i`, the `A` pieces have size `s`).
///
/// This realizes the same guarantee as the subdivision in the paper's proof of
/// Lemma 16 — `B`-components of size `k` or `k + 1` separated by `A`-blocks of
/// size exactly `s` — via a direct search for the number `m` of `B`-pieces:
/// `m·k + (m−1)·s ≤ z ≤ m·(k+1) + (m−1)·s`. For `z ≥ (s + k + 1)²` such an
/// `m` always exists because consecutive feasibility intervals overlap once
/// `m ≥ s + k − 1`.
///
/// # Panics
///
/// Panics if no feasible `m` exists (i.e. the precondition on `z` is violated).
fn segment_sizes(z: usize, s: usize, k: usize) -> Vec<usize> {
    let mut chosen = None;
    let upper_m = z / k + 1;
    for m in 1..=upper_m {
        let lo = m * k + (m - 1) * s;
        let hi = m * (k + 1) + (m - 1) * s;
        if lo <= z && z <= hi {
            chosen = Some(m);
            break;
        }
        if lo > z {
            break;
        }
    }
    let m = chosen
        .unwrap_or_else(|| panic!("segment of length {z} cannot be subdivided with s={s}, k={k}"));
    let extra = z - (m * k + (m - 1) * s); // how many B-pieces get size k + 1
    let mut sizes = Vec::with_capacity(2 * m - 1);
    for i in 0..m {
        sizes.push(if i < extra { k + 1 } else { k });
        if i + 1 < m {
            sizes.push(s);
        }
    }
    debug_assert_eq!(
        sizes.iter().sum::<usize>(),
        z,
        "sizes must cover the segment"
    );
    sizes
}

/// Builds the Lemma 16 decomposition of a cycle of `n` nodes from anchor
/// positions (sorted, cyclic) whose consecutive gaps are all at least
/// `k·(s + k + 1)` and at most some constant.
///
/// Each anchor starts an `A`-block of size `s`; the rest of the segment up to
/// the next anchor is subdivided into alternating `B`- and `A`-blocks.
///
/// # Panics
///
/// Panics if the anchors are unsorted, out of range, or too close together.
pub fn decompose_cycle_reference(n: usize, anchors: &[usize], s: usize, k: usize) -> Decomposition {
    assert!(!anchors.is_empty(), "need at least one anchor");
    assert!(
        anchors.windows(2).all(|w| w[0] < w[1]),
        "anchors must be sorted"
    );
    assert!(*anchors.last().unwrap() < n, "anchor out of range");
    let mut kind_of = vec![BlockKind::B; n];
    let mut blocks = Vec::new();
    let m = anchors.len();
    for idx in 0..m {
        let a = anchors[idx];
        let next = anchors[(idx + 1) % m];
        let gap = (next + n - a) % n;
        let gap = if gap == 0 { n } else { gap };
        let min_gap = s + (s + k + 1) * (s + k + 1);
        assert!(
            gap >= min_gap,
            "anchors too close: gap {gap} < {min_gap} with s={s}, k={k}"
        );
        // A-block of size s starting at the anchor.
        for d in 0..s {
            kind_of[(a + d) % n] = BlockKind::A;
        }
        blocks.push((a, s, BlockKind::A));
        // Subdivide the remainder of the segment.
        let z = gap - s;
        let sizes = segment_sizes(z, s, k);
        let mut pos = (a + s) % n;
        for (i, &sz) in sizes.iter().enumerate() {
            let kind = if i % 2 == 0 {
                BlockKind::B
            } else {
                BlockKind::A
            };
            for d in 0..sz {
                kind_of[(pos + d) % n] = kind;
            }
            blocks.push((pos, sz, kind));
            pos = (pos + sz) % n;
        }
    }
    Decomposition { kind_of, blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(decomposition: &Decomposition, n: usize, s: usize, k: usize) {
        // Blocks tile the cycle.
        let total: usize = decomposition.blocks.iter().map(|b| b.1).sum();
        assert_eq!(total, n);
        // Sizes respect the lemma.
        for &(_, len, kind) in &decomposition.blocks {
            match kind {
                BlockKind::A => assert_eq!(len, s, "A-blocks have size exactly s"),
                BlockKind::B => assert!(
                    len == k || len == k + 1,
                    "B-block of size {len}, expected {k} or {}",
                    k + 1
                ),
            }
        }
        // Alternation: no two adjacent blocks of the same kind.
        let m = decomposition.blocks.len();
        for i in 0..m {
            let a = decomposition.blocks[i].2;
            let b = decomposition.blocks[(i + 1) % m].2;
            assert_ne!(a, b, "adjacent blocks must alternate kinds");
        }
    }

    #[test]
    fn segment_sizes_cover_and_alternate() {
        for s in 1..4usize {
            for k in 2..6usize {
                let start = (s + k + 1) * (s + k + 1);
                for z in start..(start + 60) {
                    let sizes = segment_sizes(z, s, k);
                    assert_eq!(sizes.iter().sum::<usize>(), z);
                    assert_eq!(sizes.len() % 2, 1, "t must be odd");
                    for (i, &sz) in sizes.iter().enumerate() {
                        if i % 2 == 1 {
                            assert_eq!(sz, s);
                        } else {
                            assert!(sz == k || sz == k + 1, "z={z} s={s} k={k} i={i} sz={sz}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn decomposition_from_regular_anchors() {
        let n = 240;
        let s = 2;
        let k = 4;
        let spacing = 60; // ≥ s + (s+k+1)² = 2 + 49 = 51
        let anchors: Vec<usize> = (0..n / spacing).map(|i| i * spacing).collect();
        let d = decompose_cycle_reference(n, &anchors, s, k);
        check(&d, n, s, k);
        assert!(d.to_string().contains("blocks"));
    }

    #[test]
    fn decomposition_from_irregular_anchors() {
        let n = 230;
        let s = 2;
        let k = 4;
        let anchors = vec![0usize, 55, 120, 177];
        let d = decompose_cycle_reference(n, &anchors, s, k);
        check(&d, n, s, k);
    }

    #[test]
    #[should_panic]
    fn close_anchors_panic() {
        let _ = decompose_cycle_reference(40, &[0, 5], 2, 4);
    }
}
