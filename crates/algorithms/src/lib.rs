//! # lcl-algorithms
//!
//! Classic deterministic LOCAL symmetry-breaking algorithms on directed paths
//! and cycles, packaged as *view computations*: every routine answers
//! questions of the form "is the node at offset `d` from me in the MIS?"
//! given a sufficiently large [`BallView`](lcl_local_sim::BallView). This is
//! exactly the form the classifier's synthesized algorithms need, because a
//! node that must fill a gap has to re-derive the decisions of nearby nodes
//! from its own view.
//!
//! Contents:
//!
//! * [`cole_vishkin`] — Cole–Vishkin colour reduction: a proper 3-colouring of
//!   directed cycles/paths in `O(log* n)` rounds \[8, 16 in the paper's
//!   bibliography\];
//! * [`mis`] — maximal independent set from a 3-colouring;
//! * [`ruling`] — distance-`[2^k·2, 3^k·3]` ruling sets by repeated
//!   contraction (the constructive core of the paper's Lemma 16);
//! * [`decomposition`] — the Lemma 16 `A ∪ B` decomposition (sequential
//!   reference + distributed version built on the ruling set);
//! * [`partition`] — the `(ℓ_width, ℓ_count, ℓ_pattern)`-partition of §4.3
//!   (Lemmas 19–22): periodic-run detection, irregular stretches, and the
//!   sequential reference partition used by tests and by the `O(1)` synthesis;
//! * [`trivial`] — the trivial `O(n)` algorithm (gather everything, output a
//!   canonical solution), used as the baseline and as the fallback for the
//!   `Θ(n)` class.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cole_vishkin;
pub mod decomposition;
pub mod mis;
pub mod partition;
pub mod ruling;
pub mod trivial;

pub use cole_vishkin::{cv_color, cv_radius, ThreeColoringAlgorithm};
pub use decomposition::{decompose_cycle_reference, BlockKind, Decomposition};
pub use mis::{in_mis, mis_radius, MisAlgorithm};
pub use partition::{
    classify_position, reference_partition, PartitionParams, PositionClass, ReferencePartition,
    Segment, SegmentKind,
};
pub use ruling::{ruling_set_gap_bounds, ruling_set_radius, RulingSetComputer};
pub use trivial::{canonical_solution, GatherAndSolve};
