//! Maximal independent set on directed cycles and paths, derived from the
//! Cole–Vishkin 3-colouring by the standard colour-class greedy.
//!
//! A node joins the MIS iff it has colour 0, or it has colour `c > 0` and no
//! neighbour of a smaller colour class joined. Because the palette has size 3,
//! the greedy needs only two more rounds after the colouring.

use crate::cole_vishkin::{cv_color, cv_radius};
use lcl_local_sim::{BallView, LocalAlgorithm};
use lcl_problem::OutLabel;

/// The view radius needed to decide MIS membership of the centre node.
pub fn mis_radius(n: usize) -> usize {
    cv_radius(n) + 2
}

/// Decides whether the node at signed `offset` from the view's centre belongs
/// to the maximal independent set.
///
/// Returns `None` when the view is too small to determine membership.
pub fn in_mis(view: &BallView, offset: isize, n: usize) -> Option<bool> {
    fn joined(view: &BallView, offset: isize, n: usize, color: u64) -> Option<bool> {
        // A node of colour c joins iff no neighbour of strictly smaller colour
        // joined. Recursion is bounded because colours strictly decrease.
        if color == 0 {
            return Some(true);
        }
        for d in [-1isize, 1] {
            if view.at(offset + d).is_none() {
                continue; // path endpoint: no neighbour there
            }
            let neighbour_color = cv_color(view, offset + d, n)?;
            if neighbour_color < color && joined(view, offset + d, n, neighbour_color)? {
                return Some(false);
            }
        }
        Some(true)
    }
    let color = cv_color(view, offset, n)?;
    joined(view, offset, n, color)
}

/// A ready-made [`LocalAlgorithm`] computing an MIS; output `1` means "in the
/// set", `0` means "not in the set".
#[derive(Clone, Debug, Default)]
pub struct MisAlgorithm;

impl LocalAlgorithm for MisAlgorithm {
    fn radius(&self, n: usize) -> usize {
        mis_radius(n)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        match in_mis(view, 0, view.n) {
            Some(true) => OutLabel(1),
            _ => OutLabel(0),
        }
    }

    fn name(&self) -> &str {
        "mis-from-3-coloring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_local_sim::{IdAssignment, Network, SyncSimulator};
    use lcl_problem::{Instance, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_mis(n: usize, topology: Topology, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            Instance::from_indices(topology, &vec![0; n]),
            IdAssignment::RandomFromSpace { multiplier: 8 },
            &mut rng,
        )
        .unwrap();
        let out = SyncSimulator::new().run(&net, &MisAlgorithm).unwrap();
        out.outputs().iter().map(|o| o.0 == 1).collect()
    }

    fn check_mis(selected: &[bool], is_cycle: bool) {
        let n = selected.len();
        // Independence.
        for i in 0..n {
            let j = (i + 1) % n;
            if !is_cycle && j == 0 {
                continue;
            }
            assert!(
                !(selected[i] && selected[j]),
                "adjacent nodes {i},{j} both selected"
            );
        }
        // Maximality: every unselected node has a selected neighbour.
        for i in 0..n {
            if selected[i] {
                continue;
            }
            let mut has = false;
            if is_cycle || i > 0 {
                has |= selected[(i + n - 1) % n];
            }
            if is_cycle || i + 1 < n {
                has |= selected[(i + 1) % n];
            }
            assert!(has, "unselected node {i} has no selected neighbour");
        }
    }

    #[test]
    fn mis_on_cycles() {
        for &n in &[3usize, 5, 8, 21, 64] {
            for seed in 0..3 {
                let sel = run_mis(n, Topology::Cycle, seed);
                check_mis(&sel, true);
            }
        }
    }

    #[test]
    fn mis_on_paths() {
        for &n in &[2usize, 3, 9, 40] {
            let sel = run_mis(n, Topology::Path, 11);
            check_mis(&sel, false);
        }
    }

    #[test]
    fn consecutive_mis_nodes_are_two_or_three_apart_on_cycles() {
        let n = 60;
        let sel = run_mis(n, Topology::Cycle, 5);
        let positions: Vec<usize> = (0..n).filter(|&i| sel[i]).collect();
        assert!(!positions.is_empty());
        for w in 0..positions.len() {
            let a = positions[w];
            let b = positions[(w + 1) % positions.len()];
            let gap = (b + n - a) % n;
            assert!((2..=3).contains(&gap), "gap {gap} between MIS nodes");
        }
    }

    #[test]
    fn small_view_returns_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::new(
            Instance::from_indices(Topology::Cycle, &[0; 16]),
            IdAssignment::RandomFromSpace { multiplier: 4 },
            &mut rng,
        )
        .unwrap();
        let v = SyncSimulator::new().view(&net, 0, 1);
        assert_eq!(in_mis(&v, 0, 16), None);
    }
}
