//! Cole–Vishkin colour reduction on directed cycles and paths.
//!
//! Starting from the unique identifiers (a proper colouring with a huge
//! palette), each iteration replaces a node's colour by
//! `2·i + bit_i(colour)`, where `i` is the lowest bit position at which the
//! node's colour differs from its successor's colour. After `O(log* n)`
//! iterations the palette size drops below 6; three final "shift-down" phases
//! reduce it to 3. The whole procedure is exposed as a pure function of the
//! ball view so that other algorithms can re-derive the colours of nearby
//! nodes.

use lcl_local_sim::{log_star, BallView, LocalAlgorithm};
use lcl_problem::OutLabel;

/// Number of Cole–Vishkin iterations used for networks of `n` nodes.
///
/// Identifiers come from a polynomial space, so `O(log* n)` iterations reach a
/// constant palette; the additive constant absorbs the first iterations on
/// 64-bit identifiers. Extra iterations are harmless (the palette stays below
/// 6 once it gets there).
pub fn cv_iterations(n: usize) -> usize {
    log_star(n) + 8
}

/// The view radius needed to compute the final 3-colour of the node itself:
/// `cv_iterations(n)` hops towards the successor side for the iterations plus
/// 3 more on each side for the shift-down phases.
pub fn cv_radius(n: usize) -> usize {
    cv_iterations(n) + 6
}

/// The colour of the node at signed `offset` from the view's centre after the
/// iterated Cole–Vishkin reduction *without* the final shift-down phases;
/// the result is smaller than 6.
///
/// Returns `None` if the view is too small to determine the colour (the
/// caller asked about a node too far away, or too close to the edge of the
/// view).
fn six_color_at(view: &BallView, offset: isize, iterations: usize) -> Option<u64> {
    // colour after k iterations of node at `offset` depends on ids at
    // offsets offset .. offset + k.
    let farthest = offset + iterations as isize;
    // Make sure every id we may need is available, unless the path ends.
    // We detect path ends through `view.at` returning None *because of an
    // endpoint*, which is only trustworthy if the view itself extends far
    // enough; hence the explicit range check against the view radius.
    if offset < -(view.radius as isize) || farthest > view.radius as isize {
        return None;
    }
    fn color_rec(view: &BallView, offset: isize, k: usize) -> Option<u64> {
        if k == 0 {
            return view.id_at(offset);
        }
        let own = color_rec(view, offset, k - 1)?;
        let succ = match view.at(offset + 1) {
            Some(_) => color_rec(view, offset + 1, k - 1)?,
            // Path end: pretend the successor's colour differs at bit 0.
            None => own ^ 1,
        };
        let diff = own ^ succ;
        debug_assert!(diff != 0, "proper colouring is maintained");
        let i = diff.trailing_zeros() as u64;
        Some(2 * i + ((own >> i) & 1))
    }
    color_rec(view, offset, iterations)
}

/// The final 3-colour (in `{0, 1, 2}`) of the node at signed `offset` from the
/// view's centre.
///
/// Returns `None` when the view is too small: the caller needs
/// `|offset| + cv_radius(n)` within the view radius (less near path
/// endpoints, where missing neighbours are genuine knowledge).
pub fn cv_color(view: &BallView, offset: isize, n: usize) -> Option<u64> {
    let iterations = cv_iterations(n);
    // Shift-down phases eliminate colours 5, 4, 3 in turn. The colour of a
    // node at phase p depends on the phase-(p-1) colours of itself and both
    // neighbours.
    fn phase_color(view: &BallView, offset: isize, phase: usize, iterations: usize) -> Option<u64> {
        if phase == 0 {
            return six_color_at(view, offset, iterations);
        }
        let own = phase_color(view, offset, phase - 1, iterations)?;
        let target = 6 - phase as u64; // 5, then 4, then 3
        if own != target {
            return Some(own);
        }
        let pred = match view.at(offset - 1) {
            Some(_) => phase_color(view, offset - 1, phase - 1, iterations)?,
            None => u64::MAX,
        };
        let succ = match view.at(offset + 1) {
            Some(_) => phase_color(view, offset + 1, phase - 1, iterations)?,
            None => u64::MAX,
        };
        // Recolour with the smallest colour not used by either neighbour.
        Some((0..3).find(|c| *c != pred && *c != succ).unwrap_or(0))
    }
    phase_color(view, offset, 3, iterations)
}

/// A ready-made [`LocalAlgorithm`] computing a proper 3-colouring of a
/// directed cycle or path; the output label is the colour (`0`, `1`, or `2`).
#[derive(Clone, Debug, Default)]
pub struct ThreeColoringAlgorithm;

impl LocalAlgorithm for ThreeColoringAlgorithm {
    fn radius(&self, n: usize) -> usize {
        cv_radius(n)
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        let c = cv_color(view, 0, view.n).unwrap_or(0);
        OutLabel(c as u16)
    }

    fn name(&self) -> &str {
        "cole-vishkin-3-coloring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_local_sim::{Network, SyncSimulator};
    use lcl_problem::{Instance, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_coloring(n: usize, topology: Topology, seed: u64) -> Vec<u16> {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            Instance::from_indices(topology, &vec![0; n]),
            lcl_local_sim::IdAssignment::RandomFromSpace { multiplier: 8 },
            &mut rng,
        )
        .unwrap();
        let out = SyncSimulator::new()
            .run(&net, &ThreeColoringAlgorithm)
            .unwrap();
        out.outputs().iter().map(|o| o.0).collect()
    }

    #[test]
    fn coloring_is_proper_on_cycles() {
        for &n in &[3usize, 4, 7, 16, 33, 100] {
            for seed in 0..3 {
                let colors = run_coloring(n, Topology::Cycle, seed);
                assert!(colors.iter().all(|&c| c < 3), "palette of size 3");
                for i in 0..n {
                    assert_ne!(
                        colors[i],
                        colors[(i + 1) % n],
                        "n={n} seed={seed} i={i}: adjacent nodes share a colour"
                    );
                }
            }
        }
    }

    #[test]
    fn coloring_is_proper_on_paths() {
        for &n in &[2usize, 5, 17, 64] {
            let colors = run_coloring(n, Topology::Path, 42);
            assert!(colors.iter().all(|&c| c < 3));
            for i in 0..n - 1 {
                assert_ne!(colors[i], colors[i + 1], "n={n} i={i}");
            }
        }
    }

    #[test]
    fn radius_grows_like_log_star() {
        assert!(cv_radius(16) <= cv_radius(1 << 16));
        assert!(cv_radius(1 << 16) <= 20, "log* stays tiny");
        assert!(cv_iterations(2) >= 1);
    }

    #[test]
    fn out_of_view_requests_return_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(
            Instance::from_indices(Topology::Cycle, &[0; 32]),
            lcl_local_sim::IdAssignment::RandomFromSpace { multiplier: 4 },
            &mut rng,
        )
        .unwrap();
        let sim = SyncSimulator::new();
        let small_view = sim.view(&net, 0, 2);
        assert_eq!(cv_color(&small_view, 0, 32), None);
        let big_view = sim.view(&net, 0, cv_radius(32) + 5);
        assert!(cv_color(&big_view, 0, 32).is_some());
        assert!(cv_color(&big_view, 3, 32).is_some());
        assert_eq!(cv_color(&big_view, 1000, 32), None);
    }

    #[test]
    fn consistent_across_centres() {
        // The colour computed for "offset +1 from node i" must equal the
        // colour computed for "offset 0 from node i+1".
        let mut rng = StdRng::seed_from_u64(9);
        let n = 24;
        let net = Network::new(
            Instance::from_indices(Topology::Cycle, &vec![0; n]),
            lcl_local_sim::IdAssignment::RandomFromSpace { multiplier: 4 },
            &mut rng,
        )
        .unwrap();
        let sim = SyncSimulator::new();
        let r = cv_radius(n) + 2;
        for i in 0..n {
            let vi = sim.view(&net, i, r);
            let vnext = sim.view(&net, (i + 1) % n, r);
            assert_eq!(
                cv_color(&vi, 1, n).unwrap(),
                cv_color(&vnext, 0, n).unwrap(),
                "node {i}"
            );
        }
    }
}
