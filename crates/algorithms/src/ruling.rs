//! Well-spaced ruling sets on directed cycles and paths in `O(log* n)` rounds.
//!
//! This is the constructive engine behind the paper's Lemma 16: starting from
//! an MIS (consecutive selected nodes 2–3 apart), repeatedly contract the
//! selected nodes into a virtual cycle, 3-colour it with Cole–Vishkin using the
//! original identifiers, and take an MIS of the contraction. Each level
//! multiplies the minimum gap by 2 and the maximum gap by 3, so after `k`
//! levels consecutive selected nodes are between `2^k` and `3^k` apart — both
//! constants — while the total round count stays `O(log* n)`.
//!
//! Everything is exposed through [`RulingSetComputer`], a per-view memoized
//! evaluator that can answer membership queries for the centre node *and for
//! nearby nodes*, which is what the synthesized `O(log* n)` algorithm needs in
//! order to locate the anchors adjacent to a gap.

use lcl_local_sim::{log_star, BallView};
use std::cell::RefCell;
use std::collections::HashMap;

/// The `[min_gap, max_gap]` bounds on the distance between consecutive
/// ruling-set members at the given level (level 0 is "every node", level 1 is
/// the MIS).
pub fn ruling_set_gap_bounds(level: usize) -> (usize, usize) {
    if level == 0 {
        (1, 1)
    } else {
        (2usize.pow(level as u32), 3usize.pow(level as u32))
    }
}

/// Number of Cole–Vishkin iterations used inside the ruling-set construction.
fn iterations(n: usize) -> usize {
    log_star(n) + 8
}

/// A generous upper bound on the view radius needed to decide level-`level`
/// membership of the centre node (and of nodes within `slack` hops of it).
pub fn ruling_set_radius(level: usize, n: usize, slack: usize) -> usize {
    let it = iterations(n);
    let mut radius = 0usize;
    for l in 0..level {
        let (_, max_gap) = ruling_set_gap_bounds(l);
        // Colouring the level-l contraction needs `it` successor hops plus the
        // shift-down and MIS phases, each hop costing up to `max_gap` original
        // edges; finding contracted neighbours costs up to `max_gap + 1` more.
        radius += (it + 8) * max_gap + 2 * (max_gap + 1);
    }
    radius + slack
}

/// Memoized evaluator of the levelled ruling-set construction over one view.
pub struct RulingSetComputer<'a> {
    view: &'a BallView,
    n: usize,
    iterations: usize,
    member_memo: RefCell<HashMap<(usize, isize), Option<bool>>>,
    six_memo: RefCell<HashMap<(usize, isize, usize), Option<u64>>>,
    phase_memo: RefCell<HashMap<(usize, isize, usize), Option<u64>>>,
}

impl<'a> RulingSetComputer<'a> {
    /// Creates an evaluator over a view of a network with `view.n` nodes.
    pub fn new(view: &'a BallView) -> Self {
        RulingSetComputer {
            view,
            n: view.n,
            iterations: iterations(view.n),
            member_memo: RefCell::new(HashMap::new()),
            six_memo: RefCell::new(HashMap::new()),
            phase_memo: RefCell::new(HashMap::new()),
        }
    }

    fn in_view(&self, offset: isize) -> bool {
        self.view.at(offset).is_some()
    }

    fn exists(&self, offset: isize) -> bool {
        // A node "exists" if it is inside the view; offsets beyond a path
        // endpoint return false. Offsets beyond the view radius also return
        // false, but callers must have checked range before relying on this.
        self.view.at(offset).is_some()
    }

    /// Whether the node at `offset` is a member of the level-`level` ruling
    /// set. Level 0 contains every node; level 1 is the MIS; level `k + 1` is
    /// the contraction MIS of level `k`. Returns `None` when the view is too
    /// small to decide.
    pub fn is_member(&self, level: usize, offset: isize) -> Option<bool> {
        if !self.in_view(offset) {
            return None;
        }
        if level == 0 {
            return Some(true);
        }
        let key = (level, offset);
        if let Some(&cached) = self.member_memo.borrow().get(&key) {
            return cached;
        }
        let result = self.compute_membership(level, offset);
        self.member_memo.borrow_mut().insert(key, result);
        result
    }

    fn compute_membership(&self, level: usize, offset: isize) -> Option<bool> {
        // Must be a member of the previous level.
        if !self.is_member(level - 1, offset)? {
            return Some(false);
        }
        // Greedy MIS by colour class over the level-(level-1) contraction.
        let color = self.three_color(level - 1, offset)?;
        self.joined(level - 1, offset, color)
    }

    fn joined(&self, color_level: usize, offset: isize, color: u64) -> Option<bool> {
        if color == 0 {
            return Some(true);
        }
        for next in [
            self.prev_member(color_level, offset),
            self.next_member(color_level, offset),
        ] {
            let Some(neigh) = next? else { continue };
            let neigh_color = self.three_color(color_level, neigh)?;
            if neigh_color < color && self.joined(color_level, neigh, neigh_color)? {
                return Some(false);
            }
        }
        Some(true)
    }

    /// The nearest member of level `level` strictly to the right of `offset`:
    /// `Ok(Some(offset'))`, or `Ok(None)` if the path ends first.
    /// Returns `None` (outer) when the view is too small to decide.
    #[allow(clippy::option_option)]
    fn next_member(&self, level: usize, offset: isize) -> Option<Option<isize>> {
        let (_, max_gap) = ruling_set_gap_bounds(level);
        for d in 1..=(max_gap as isize + 1) {
            let cand = offset + d;
            if cand > self.view.radius as isize {
                return None;
            }
            if !self.exists(cand) {
                return Some(None); // path ended
            }
            if self.is_member(level, cand)? {
                return Some(Some(cand));
            }
        }
        // Gap bound violated would be a bug; treat as undecidable.
        None
    }

    /// The nearest member of level `level` strictly to the left of `offset`.
    #[allow(clippy::option_option)]
    fn prev_member(&self, level: usize, offset: isize) -> Option<Option<isize>> {
        let (_, max_gap) = ruling_set_gap_bounds(level);
        for d in 1..=(max_gap as isize + 1) {
            let cand = offset - d;
            if cand < -(self.view.radius as isize) {
                return None;
            }
            if !self.exists(cand) {
                return Some(None);
            }
            if self.is_member(level, cand)? {
                return Some(Some(cand));
            }
        }
        None
    }

    /// Cole–Vishkin colour (< 6) of the member at `offset` in the level-`level`
    /// contraction after `k` iterations.
    fn six_color(&self, level: usize, offset: isize, k: usize) -> Option<u64> {
        let key = (level, offset, k);
        if let Some(&cached) = self.six_memo.borrow().get(&key) {
            return cached;
        }
        let result = (|| {
            if k == 0 {
                return self.view.id_at(offset);
            }
            let own = self.six_color(level, offset, k - 1)?;
            let succ_color = match self.next_member(level, offset)? {
                Some(succ) => self.six_color(level, succ, k - 1)?,
                None => own ^ 1, // path end: pretend a colour differing at bit 0
            };
            let diff = own ^ succ_color;
            if diff == 0 {
                // Can only happen on degenerate one-node contractions; fall
                // back to a fixed colour.
                return Some(own & 1);
            }
            let i = diff.trailing_zeros() as u64;
            Some(2 * i + ((own >> i) & 1))
        })();
        self.six_memo.borrow_mut().insert(key, result);
        result
    }

    /// Final 3-colour of the member at `offset` in the level-`level`
    /// contraction (after the three shift-down phases).
    fn three_color(&self, level: usize, offset: isize) -> Option<u64> {
        self.phase_color(level, offset, 3)
    }

    fn phase_color(&self, level: usize, offset: isize, phase: usize) -> Option<u64> {
        if phase == 0 {
            return self.six_color(level, offset, self.iterations);
        }
        let key = (level, offset, phase);
        if let Some(&cached) = self.phase_memo.borrow().get(&key) {
            return cached;
        }
        let result = (|| {
            let own = self.phase_color(level, offset, phase - 1)?;
            let target = 6 - phase as u64;
            if own != target {
                return Some(own);
            }
            let pred = match self.prev_member(level, offset)? {
                Some(p) => self.phase_color(level, p, phase - 1)?,
                None => u64::MAX,
            };
            let succ = match self.next_member(level, offset)? {
                Some(s) => self.phase_color(level, s, phase - 1)?,
                None => u64::MAX,
            };
            Some((0..3).find(|c| *c != pred && *c != succ).unwrap_or(0))
        })();
        self.phase_memo.borrow_mut().insert(key, result);
        result
    }

    /// Number of nodes of the network.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_local_sim::{IdAssignment, Network, SyncSimulator};
    use lcl_problem::{Instance, Topology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn membership_vector(n: usize, level: usize, seed: u64, topology: Topology) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            Instance::from_indices(topology, &vec![0; n]),
            IdAssignment::RandomFromSpace { multiplier: 4 },
            &mut rng,
        )
        .unwrap();
        let sim = SyncSimulator::new();
        let radius = ruling_set_radius(level, n, 2);
        (0..n)
            .map(|i| {
                let view = sim.view(&net, i, radius);
                let rs = RulingSetComputer::new(&view);
                rs.is_member(level, 0).expect("radius is sufficient")
            })
            .collect()
    }

    fn check_gaps(selected: &[bool], min_gap: usize, max_gap: usize) {
        let n = selected.len();
        let positions: Vec<usize> = (0..n).filter(|&i| selected[i]).collect();
        assert!(!positions.is_empty(), "ruling set must be non-empty");
        for w in 0..positions.len() {
            let a = positions[w];
            let b = positions[(w + 1) % positions.len()];
            let gap = (b + n - a) % n;
            let gap = if gap == 0 { n } else { gap };
            assert!(
                gap >= min_gap && gap <= max_gap,
                "gap {gap} outside [{min_gap}, {max_gap}]"
            );
        }
    }

    #[test]
    fn level_one_is_an_mis() {
        for seed in 0..2 {
            let sel = membership_vector(40, 1, seed, Topology::Cycle);
            let (lo, hi) = ruling_set_gap_bounds(1);
            check_gaps(&sel, lo, hi);
        }
    }

    #[test]
    fn level_two_gaps_are_bounded() {
        let sel = membership_vector(60, 2, 3, Topology::Cycle);
        let (lo, hi) = ruling_set_gap_bounds(2);
        assert_eq!((lo, hi), (4, 9));
        check_gaps(&sel, lo, hi);
    }

    #[test]
    fn level_three_gaps_are_bounded() {
        let sel = membership_vector(140, 3, 1, Topology::Cycle);
        let (lo, hi) = ruling_set_gap_bounds(3);
        assert_eq!((lo, hi), (8, 27));
        check_gaps(&sel, lo, hi);
    }

    #[test]
    fn members_are_nested_across_levels() {
        let n = 60;
        let l1 = membership_vector(n, 1, 9, Topology::Cycle);
        let l2 = membership_vector(n, 2, 9, Topology::Cycle);
        for i in 0..n {
            if l2[i] {
                assert!(l1[i], "level-2 member {i} must be a level-1 member");
            }
        }
    }

    #[test]
    fn works_on_paths() {
        let sel = membership_vector(50, 2, 5, Topology::Path);
        // On a path we only check consecutive gaps (no wrap-around) and allow
        // the first/last stretch to be short.
        let positions: Vec<usize> = (0..50).filter(|&i| sel[i]).collect();
        assert!(!positions.is_empty());
        for w in positions.windows(2) {
            let gap = w[1] - w[0];
            let (lo, hi) = ruling_set_gap_bounds(2);
            assert!(gap >= lo && gap <= hi, "gap {gap}");
        }
    }

    #[test]
    fn insufficient_view_returns_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::new(
            Instance::from_indices(Topology::Cycle, &[0; 64]),
            IdAssignment::RandomFromSpace { multiplier: 4 },
            &mut rng,
        )
        .unwrap();
        let view = SyncSimulator::new().view(&net, 0, 3);
        let rs = RulingSetComputer::new(&view);
        assert_eq!(rs.is_member(2, 0), None);
        assert_eq!(rs.is_member(0, 0), Some(true));
        assert_eq!(rs.n(), 64);
    }

    #[test]
    fn gap_bound_constants() {
        assert_eq!(ruling_set_gap_bounds(0), (1, 1));
        assert_eq!(ruling_set_gap_bounds(1), (2, 3));
        assert_eq!(ruling_set_gap_bounds(4), (16, 81));
        assert!(ruling_set_radius(2, 100, 0) > ruling_set_radius(1, 100, 0));
    }
}
