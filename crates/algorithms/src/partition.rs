//! The `(ℓ_width, ℓ_count, ℓ_pattern)`-partition of §4.3 (Lemmas 19–22):
//! splitting a labeled cycle into long stretches with a repetitive input
//! pattern and the remaining irregular stretches.
//!
//! Two forms are provided:
//!
//! * [`classify_position`] — the local test a node applies to its own input
//!   window: "am I deep inside a region that is periodic with some primitive
//!   pattern of length ≤ ℓ_pattern?" This is the `O(1)`-round part used by the
//!   synthesized constant-time algorithms.
//! * [`reference_partition`] — a sequential, whole-instance computation of the
//!   resulting segments, used by tests, by the centralized reference solver
//!   and by the benchmark workload generators.

use lcl_problem::{InLabel, Instance};
use lcl_semigroup::{is_primitive, primitive_root, smallest_period};

/// Parameters of the partition, mirroring the paper's
/// `ℓ_width`, `ℓ_count`, `ℓ_pattern` constants.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PartitionParams {
    /// Maximum period length considered "repetitive" (`ℓ_pattern`).
    pub pattern: usize,
    /// Minimum number of pattern repetitions for a stretch to count as
    /// periodic (`ℓ_count`).
    pub count: usize,
    /// Trim width at the ends of periodic stretches (`ℓ_width`).
    pub width: usize,
}

impl PartitionParams {
    /// Creates parameters; `pattern ≥ 1`, `count ≥ 1`, `width ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(pattern: usize, count: usize, width: usize) -> Self {
        assert!(
            pattern >= 1 && count >= 1 && width >= 1,
            "parameters must be positive"
        );
        PartitionParams {
            pattern,
            count,
            width,
        }
    }

    /// The one-sided radius a node needs in order to classify itself:
    /// enough to see `count + 2·width` repetitions of the longest pattern.
    pub fn core_radius(&self) -> usize {
        self.pattern * (self.count + 2 * self.width)
    }
}

/// The outcome of the local classification of one position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PositionClass {
    /// The position lies deep inside a periodic region: the whole window of
    /// radius [`PartitionParams::core_radius`] around it repeats a primitive
    /// pattern of length ≤ `ℓ_pattern`.
    PeriodicCore {
        /// The pattern in its canonical (lexicographically least) rotation.
        pattern: Vec<InLabel>,
        /// The phase of the centre position within the canonical rotation:
        /// the centre's input equals `pattern[phase]`, and the canonical
        /// rotation starts `phase` positions before the centre.
        phase: usize,
    },
    /// The position is not deep inside any short-period region.
    Other,
}

/// Returns the lexicographically least rotation of a primitive word and the
/// rotation offset `s` such that `canonical[i] = word[(i + s) mod |word|]`.
pub fn canonical_rotation(word: &[InLabel]) -> (Vec<InLabel>, usize) {
    let n = word.len();
    let mut best = 0usize;
    for s in 1..n {
        for i in 0..n {
            let a = word[(i + s) % n];
            let b = word[(i + best) % n];
            if a != b {
                if a < b {
                    best = s;
                }
                break;
            }
        }
    }
    let canonical = (0..n).map(|i| word[(i + best) % n]).collect();
    (canonical, best)
}

/// Classifies the centre of an input window.
///
/// `window` is a slice of input labels and `center` the index of the node
/// being classified within it. The node is a periodic core iff the sub-window
/// of radius [`PartitionParams::core_radius`] around `center` exists entirely
/// inside `window` and is periodic with its smallest period ≤
/// `params.pattern`.
pub fn classify_position(
    window: &[InLabel],
    center: usize,
    params: &PartitionParams,
) -> PositionClass {
    let radius = params.core_radius();
    if center < radius || center + radius >= window.len() {
        return PositionClass::Other;
    }
    let lo = center - radius;
    let hi = center + radius;
    let segment = &window[lo..=hi];
    let period = smallest_period(segment);
    if period > params.pattern {
        return PositionClass::Other;
    }
    // The primitive pattern starting at the centre.
    let occurrence: Vec<InLabel> = (0..period).map(|i| window[center + i]).collect();
    debug_assert!(is_primitive(&occurrence) || period == 1);
    let (pattern, shift) = canonical_rotation(&occurrence);
    // canonical[i] = occurrence[(i + shift) mod p]; the centre is occurrence[0]
    // = canonical[(0 - shift) mod p] = canonical[(p - shift) mod p].
    let phase = (period - shift) % period;
    PositionClass::PeriodicCore { pattern, phase }
}

/// The kind of a segment in the reference partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// A maximal run of positions that are periodic cores of the same
    /// canonical pattern.
    Periodic {
        /// The canonical pattern.
        pattern: Vec<InLabel>,
    },
    /// Everything else.
    Irregular,
}

/// One segment of the reference partition: `len` consecutive positions
/// starting at `start` (cyclically).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First position of the segment.
    pub start: usize,
    /// Number of positions.
    pub len: usize,
    /// What the segment is.
    pub kind: SegmentKind,
}

/// The whole-instance partition into periodic and irregular segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferencePartition {
    /// Segments in cyclic order, starting from position 0's segment.
    pub segments: Vec<Segment>,
    /// For each position, the index of its segment in `segments`.
    pub segment_of: Vec<usize>,
}

impl ReferencePartition {
    /// Total number of positions covered (equals the instance length).
    pub fn len(&self) -> usize {
        self.segment_of.len()
    }

    /// `true` if the partition covers no position.
    pub fn is_empty(&self) -> bool {
        self.segment_of.is_empty()
    }

    /// Number of periodic segments.
    pub fn periodic_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::Periodic { .. }))
            .count()
    }
}

/// Computes the reference partition of an instance (path or cycle) by
/// classifying every position with [`classify_position`] and grouping maximal
/// runs of identical classifications.
///
/// On a cycle the window wraps around; on a path positions near the endpoints
/// are always classified `Other` (they cannot be "deep inside" anything).
pub fn reference_partition(instance: &Instance, params: &PartitionParams) -> ReferencePartition {
    let n = instance.len();
    if n == 0 {
        return ReferencePartition {
            segments: vec![],
            segment_of: vec![],
        };
    }
    let radius = params.core_radius();
    let classes: Vec<PositionClass> = (0..n)
        .map(|i| {
            // Build the window of radius `radius` around i.
            match instance.topology() {
                lcl_problem::Topology::Cycle => {
                    let window: Vec<InLabel> = (-(radius as isize)..=(radius as isize))
                        .map(|d| {
                            let idx = ((i as isize + d).rem_euclid(n as isize)) as usize;
                            instance.input(idx)
                        })
                        .collect();
                    classify_position(&window, radius, params)
                }
                lcl_problem::Topology::Path => {
                    if i < radius || i + radius >= n {
                        PositionClass::Other
                    } else {
                        let window: Vec<InLabel> = (i - radius..=i + radius)
                            .map(|k| instance.input(k))
                            .collect();
                        classify_position(&window, radius, params)
                    }
                }
            }
        })
        .collect();

    let mut segments: Vec<Segment> = Vec::new();
    let mut segment_of = vec![0usize; n];
    let mut start = 0usize;
    while start < n {
        let kind = match &classes[start] {
            PositionClass::PeriodicCore { pattern, .. } => SegmentKind::Periodic {
                pattern: pattern.clone(),
            },
            PositionClass::Other => SegmentKind::Irregular,
        };
        let mut len = 1usize;
        while start + len < n {
            let same = match (&classes[start + len], &kind) {
                (
                    PositionClass::PeriodicCore { pattern, .. },
                    SegmentKind::Periodic { pattern: p },
                ) => pattern == p,
                (PositionClass::Other, SegmentKind::Irregular) => true,
                _ => false,
            };
            if !same {
                break;
            }
            len += 1;
        }
        let idx = segments.len();
        for k in 0..len {
            segment_of[start + k] = idx;
        }
        segments.push(Segment { start, len, kind });
        start += len;
    }
    ReferencePartition {
        segments,
        segment_of,
    }
}

/// Convenience: the primitive root of a word (re-exported from
/// `lcl-semigroup` so partition users need one import).
pub fn primitive_root_of(word: &[InLabel]) -> Vec<InLabel> {
    primitive_root(word).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::Topology;

    fn w(indices: &[u16]) -> Vec<InLabel> {
        indices.iter().copied().map(InLabel).collect()
    }

    #[test]
    fn canonical_rotation_properties() {
        let (canon, shift) = canonical_rotation(&w(&[1, 0, 2]));
        assert_eq!(canon, w(&[0, 2, 1]));
        assert_eq!(shift, 1);
        for (word, expect) in [
            (w(&[0]), w(&[0])),
            (w(&[1, 0]), w(&[0, 1])),
            (w(&[2, 1, 0]), w(&[0, 2, 1])),
        ] {
            let (canon, shift) = canonical_rotation(&word);
            assert_eq!(canon, expect);
            // Verify the rotation equation.
            let n = word.len();
            for i in 0..n {
                assert_eq!(canon[i], word[(i + shift) % n]);
            }
        }
    }

    #[test]
    fn classify_periodic_core() {
        let params = PartitionParams::new(2, 2, 1);
        let radius = params.core_radius();
        assert_eq!(radius, 8);
        // A long (1 0)-periodic window.
        let window: Vec<InLabel> = (0..30).map(|i| InLabel((i % 2) as u16)).collect();
        let class = classify_position(&window, 15, &params);
        match class {
            PositionClass::PeriodicCore { pattern, phase } => {
                assert_eq!(pattern, w(&[0, 1]));
                // Position 15 has input 1 = pattern[1].
                assert_eq!(phase, 1);
            }
            PositionClass::Other => panic!("expected a periodic core"),
        }
        let class14 = classify_position(&window, 14, &params);
        match class14 {
            PositionClass::PeriodicCore { phase, .. } => assert_eq!(phase, 0),
            PositionClass::Other => panic!("expected a periodic core"),
        }
    }

    #[test]
    fn classify_near_defect_is_other() {
        let params = PartitionParams::new(2, 2, 1);
        let mut inputs: Vec<u16> = (0..40).map(|i| (i % 2) as u16).collect();
        inputs[20] = 1; // defect breaks the (0 1) period locally
        let window = w(&inputs);
        assert_eq!(
            classify_position(&window, 20, &params),
            PositionClass::Other
        );
        assert_eq!(
            classify_position(&window, 22, &params),
            PositionClass::Other
        );
        // Far from the defect it is periodic again... position 35 is more than
        // core_radius away from the defect but needs the window to extend to
        // 35+8 ≤ 39: ok.
        assert!(matches!(
            classify_position(&window, 30, &params),
            PositionClass::PeriodicCore { .. }
        ));
    }

    #[test]
    fn classify_window_too_small() {
        let params = PartitionParams::new(2, 2, 1);
        let window = w(&[0, 1, 0, 1]);
        assert_eq!(classify_position(&window, 1, &params), PositionClass::Other);
    }

    #[test]
    fn reference_partition_of_periodic_cycle() {
        let params = PartitionParams::new(2, 2, 1);
        let inst = Instance::from_indices(Topology::Cycle, &[0, 1].repeat(20));
        let part = reference_partition(&inst, &params);
        assert_eq!(part.len(), 40);
        assert_eq!(part.segments.len(), 1);
        assert_eq!(part.periodic_count(), 1);
        assert!(matches!(
            part.segments[0].kind,
            SegmentKind::Periodic { .. }
        ));
    }

    #[test]
    fn reference_partition_with_defect() {
        let params = PartitionParams::new(1, 2, 1);
        // Unary input with a single defect letter.
        let mut inputs = vec![0u16; 50];
        inputs[25] = 1;
        let inst = Instance::from_indices(Topology::Cycle, &inputs);
        let part = reference_partition(&inst, &params);
        // Expect: periodic segment(s) of pattern [0] and one irregular segment
        // around the defect.
        assert!(part.periodic_count() >= 1);
        let irregular: usize = part
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Irregular)
            .map(|s| s.len)
            .sum();
        let radius = params.core_radius();
        assert!(irregular >= 1 && irregular <= 2 * (2 * radius + 1));
        // Positions far from the defect are periodic.
        let far = part.segment_of[0];
        assert!(matches!(
            part.segments[far].kind,
            SegmentKind::Periodic { .. }
        ));
    }

    #[test]
    fn reference_partition_on_paths_marks_ends_irregular() {
        let params = PartitionParams::new(1, 2, 1);
        let inst = Instance::from_indices(Topology::Path, &[0; 20]);
        let part = reference_partition(&inst, &params);
        assert!(matches!(part.segments[0].kind, SegmentKind::Irregular));
        assert!(matches!(
            part.segments.last().unwrap().kind,
            SegmentKind::Irregular
        ));
        assert!(part.periodic_count() >= 1);
        assert!(!part.is_empty());
    }

    #[test]
    fn empty_instance() {
        let params = PartitionParams::new(1, 1, 1);
        let part = reference_partition(&Instance::cycle(vec![]), &params);
        assert!(part.is_empty());
        assert_eq!(part.len(), 0);
    }

    #[test]
    fn primitive_root_reexport() {
        assert_eq!(primitive_root_of(&w(&[0, 1, 0, 1])), w(&[0, 1]));
    }

    #[test]
    #[should_panic]
    fn zero_params_panic() {
        let _ = PartitionParams::new(0, 1, 1);
    }
}
