//! The trivial `O(n)`-round algorithm: gather the entire network and output a
//! canonical solution.
//!
//! "As we know, any problem for which a solution exists can be solved in
//! `O(n)` rounds in the LOCAL model by gathering all the graph and solving the
//! problem locally" (paper §3.3). All nodes must of course agree on *which*
//! solution they output; agreement is reached by rotating the gathered cycle
//! so that the node with the globally minimal identifier comes first and then
//! computing a deterministic canonical solution of that rotation.

use lcl_local_sim::{BallView, LocalAlgorithm};
use lcl_problem::{InLabel, Instance, Labeling, NormalizedLcl, OutLabel};

/// A deterministic canonical solution of an instance: the one found by the
/// dynamic program of [`NormalizedLcl::solve_brute_force`], which is a pure
/// function of the problem and the instance.
///
/// Returns `None` if the instance has no valid labeling.
pub fn canonical_solution(problem: &NormalizedLcl, instance: &Instance) -> Option<Labeling> {
    problem.solve_brute_force(instance)
}

/// The trivial `Θ(n)` LOCAL algorithm for an arbitrary normalized problem.
///
/// Every node gathers a radius-`n` view (the whole graph), reconstructs the
/// instance in a rotation all nodes agree on (starting at the minimum
/// identifier for cycles, at the path start for paths), computes the canonical
/// solution and outputs its own label. If the instance has no valid labeling
/// the node outputs label `0`; verification will flag it.
#[derive(Clone, Debug)]
pub struct GatherAndSolve {
    problem: NormalizedLcl,
}

impl GatherAndSolve {
    /// Creates the trivial algorithm for a problem.
    pub fn new(problem: &NormalizedLcl) -> Self {
        GatherAndSolve {
            problem: problem.clone(),
        }
    }

    /// The problem this instance of the algorithm solves.
    pub fn problem(&self) -> &NormalizedLcl {
        &self.problem
    }
}

impl LocalAlgorithm for GatherAndSolve {
    fn radius(&self, n: usize) -> usize {
        n
    }

    fn compute(&self, view: &BallView) -> OutLabel {
        let n = view.n;
        if n == 0 {
            return OutLabel(0);
        }
        // Path case: the view tells us our distance to the start if we can see
        // it; with radius n we always can.
        if let Some(my_pos) = view.distance_to_start() {
            let total = my_pos + 1 + view.right.len();
            let mut inputs: Vec<InLabel> = Vec::with_capacity(total);
            for d in (1..=my_pos).rev() {
                if let Some(l) = view.input_at(-(d as isize)) {
                    inputs.push(l);
                }
            }
            inputs.push(view.center.1);
            for d in 1..=view.right.len() {
                if let Some(l) = view.input_at(d as isize) {
                    inputs.push(l);
                }
            }
            let instance = Instance::path(inputs);
            return match canonical_solution(&self.problem, &instance) {
                Some(solution) => solution.output(my_pos),
                None => OutLabel(0),
            };
        }
        // Cycle case: offsets 0..n-1 to the right enumerate all nodes.
        let ids: Vec<u64> = (0..n)
            .map(|d| view.id_at(d as isize).expect("radius n covers the cycle"))
            .collect();
        let inputs: Vec<InLabel> = (0..n)
            .map(|d| {
                view.input_at(d as isize)
                    .expect("radius n covers the cycle")
            })
            .collect();
        // Rotate so the minimum id comes first.
        let min_pos = (0..n).min_by_key(|&d| ids[d]).unwrap_or(0);
        let rotated: Vec<InLabel> = (0..n).map(|j| inputs[(min_pos + j) % n]).collect();
        let instance = Instance::cycle(rotated);
        match canonical_solution(&self.problem, &instance) {
            Some(solution) => {
                // Our own position in the rotated instance.
                let my_pos = (n - min_pos) % n;
                solution.output(my_pos)
            }
            None => OutLabel(0),
        }
    }

    fn name(&self) -> &str {
        "gather-and-solve"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_local_sim::{validate_algorithm, IdAssignment, Network, SyncSimulator};
    use lcl_problem::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_coloring() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("3-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2", "3"]);
        b.allow_all_node_pairs();
        for p in 0..3u16 {
            for q in 0..3u16 {
                if p != q {
                    b.allow_edge_idx(p, q);
                }
            }
        }
        b.build().unwrap()
    }

    fn copy_input() -> NormalizedLcl {
        let mut b = NormalizedLcl::builder("copy-input");
        b.input_labels(&["a", "b"]);
        b.output_labels(&["a", "b"]);
        b.allow_node_idx(0, 0);
        b.allow_node_idx(1, 1);
        b.allow_all_edge_pairs();
        b.build().unwrap()
    }

    #[test]
    fn solves_three_coloring_on_cycles() {
        let p = three_coloring();
        let alg = GatherAndSolve::new(&p);
        assert_eq!(alg.name(), "gather-and-solve");
        assert_eq!(alg.problem().name(), "3-coloring");
        let mut rng = StdRng::seed_from_u64(5);
        let nets: Vec<Network> = [5usize, 6, 9, 12]
            .iter()
            .map(|&n| {
                Network::new(
                    Instance::from_indices(Topology::Cycle, &vec![0; n]),
                    IdAssignment::RandomFromSpace { multiplier: 4 },
                    &mut rng,
                )
                .unwrap()
            })
            .collect();
        let outcome = validate_algorithm(&p, &alg, &nets).unwrap();
        assert!(outcome.is_valid(), "{outcome:?}");
    }

    #[test]
    fn solves_on_paths_and_copies_inputs() {
        let p = copy_input();
        let alg = GatherAndSolve::new(&p);
        let net =
            Network::with_sequential_ids(Instance::from_indices(Topology::Path, &[0, 1, 1, 0, 1]));
        let out = SyncSimulator::new().run(&net, &alg).unwrap();
        assert!(p.is_valid(net.instance(), &out));
        assert_eq!(
            out.outputs().iter().map(|o| o.0).collect::<Vec<_>>(),
            vec![0, 1, 1, 0, 1]
        );
    }

    #[test]
    fn all_nodes_agree_on_one_solution() {
        // For 3-coloring many solutions exist; agreement is the point.
        let p = three_coloring();
        let alg = GatherAndSolve::new(&p);
        let mut rng = StdRng::seed_from_u64(11);
        let net = Network::new(
            Instance::from_indices(Topology::Cycle, &[0; 7]),
            IdAssignment::RandomFromSpace { multiplier: 10 },
            &mut rng,
        )
        .unwrap();
        let out = SyncSimulator::new().run(&net, &alg).unwrap();
        assert!(p.is_valid(net.instance(), &out));
    }

    #[test]
    fn unsolvable_instances_get_flagged_not_panicked() {
        // 2-coloring an odd cycle has no solution; the algorithm outputs
        // something and the verifier rejects it.
        let mut b = NormalizedLcl::builder("2-coloring");
        b.input_labels(&["x"]);
        b.output_labels(&["1", "2"]);
        b.allow_all_node_pairs();
        b.allow_edge_idx(0, 1);
        b.allow_edge_idx(1, 0);
        let p = b.build().unwrap();
        let alg = GatherAndSolve::new(&p);
        let net = Network::with_sequential_ids(Instance::from_indices(Topology::Cycle, &[0; 5]));
        let out = SyncSimulator::new().run(&net, &alg).unwrap();
        assert!(!p.is_valid(net.instance(), &out));
    }
}
