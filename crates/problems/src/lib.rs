//! # lcl-problems
//!
//! A library of concrete LCL problems on input-labeled directed paths and
//! cycles, each with its known deterministic LOCAL complexity. The corpus is
//! the ground truth against which the classifier (`lcl-classifier`) is
//! validated, and the workload set for the benchmark harness.
//!
//! Entries cover all four verdicts:
//!
//! * `O(1)` — input-copying and relaxation problems;
//! * `Θ(log* n)` — symmetry-breaking problems (colouring, MIS, matching);
//! * `Θ(n)` — information-propagation problems (secret broadcast, the
//!   `Π_{M_B}` family for looping machines);
//! * unsolvable — parity-constrained problems such as 2-colouring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lcl_hardness::{PiMb, Secret};
use lcl_lba::machines;
use lcl_problem::NormalizedLcl;

/// The known complexity of a corpus problem (ground truth from the
/// literature / first principles, independent of the classifier).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum KnownComplexity {
    /// Not solvable on all (sufficiently long) cycles.
    Unsolvable,
    /// `O(1)` rounds.
    Constant,
    /// `Θ(log* n)` rounds.
    LogStar,
    /// `Θ(n)` rounds.
    Linear,
}

/// A corpus entry: a problem plus its known complexity and a short
/// justification.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// The problem.
    pub problem: NormalizedLcl,
    /// Its known complexity on directed cycles.
    pub expected: KnownComplexity,
    /// Why (one sentence, for reports).
    pub why: &'static str,
}

/// Proper `k`-colouring of a directed cycle (inputs are irrelevant).
pub fn coloring(k: usize) -> NormalizedLcl {
    let mut b = NormalizedLcl::builder(format!("{k}-coloring"));
    b.input_labels(&["x"]);
    let names: Vec<String> = (1..=k).map(|i| i.to_string()).collect();
    b.output_labels(&names);
    b.allow_all_node_pairs();
    for p in 0..k as u16 {
        for q in 0..k as u16 {
            if p != q {
                b.allow_edge_idx(p, q);
            }
        }
    }
    b.build().expect("colouring is well-formed")
}

/// Copy your own input (binary input alphabet).
pub fn copy_input() -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("copy-input");
    b.input_labels(&["a", "b"]);
    b.output_labels(&["a", "b"]);
    b.allow_node_idx(0, 0);
    b.allow_node_idx(1, 1);
    b.allow_all_edge_pairs();
    b.build().expect("copy-input is well-formed")
}

/// Report whether your input differs from your predecessor's: outputs carry
/// the node's own input together with a "same/diff" claim about the
/// predecessor, so the edge verifier can check it.
pub fn input_boundary_detection() -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("input-boundary");
    b.input_labels(&["a", "b"]);
    // Output (own input, claim): claim S = same as predecessor, D = different.
    b.output_labels(&["aS", "aD", "bS", "bD"]);
    b.allow_node("a", "aS");
    b.allow_node("a", "aD");
    b.allow_node("b", "bS");
    b.allow_node("b", "bD");
    for pred in ["aS", "aD", "bS", "bD"] {
        for succ in ["aS", "aD", "bS", "bD"] {
            let pred_input = pred.as_bytes()[0];
            let succ_input = succ.as_bytes()[0];
            let claim_same = succ.as_bytes()[1] == b'S';
            if (pred_input == succ_input) == claim_same {
                b.allow_edge(pred, succ);
            }
        }
    }
    b.build().expect("input-boundary is well-formed")
}

/// Maximal independent set on directed cycles, with coverage encoded in the
/// output labels (`I`, out-and-covered-by-predecessor, out-and-expecting the
/// successor to be in).
pub fn maximal_independent_set() -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("mis");
    b.input_labels(&["x"]);
    b.output_labels(&["I", "Oc", "Oe"]);
    b.allow_all_node_pairs();
    b.allow_edge("I", "Oc");
    b.allow_edge("I", "Oe");
    b.allow_edge("Oc", "I");
    b.allow_edge("Oc", "Oe");
    b.allow_edge("Oe", "I");
    b.build().expect("mis is well-formed")
}

/// Maximal matching on directed cycles: each node says whether it is matched
/// with its predecessor (`MP`), with its successor (`MS`), or unmatched (`U`);
/// two adjacent unmatched nodes are forbidden (maximality) and matching claims
/// must be mutual.
pub fn maximal_matching() -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("maximal-matching");
    b.input_labels(&["x"]);
    b.output_labels(&["MP", "MS", "U"]);
    b.allow_all_node_pairs();
    // (pred, succ): if pred says "matched with successor" the successor must
    // say "matched with predecessor" and vice versa.
    b.allow_edge("MS", "MP");
    b.allow_edge("MP", "MS");
    b.allow_edge("MP", "U");
    b.allow_edge("U", "MS");
    // Two adjacent unmatched nodes would violate maximality: not allowed.
    b.build().expect("maximal-matching is well-formed")
}

/// The "secret broadcast" problem: `S_a`/`S_b` nodes announce a secret, plain
/// nodes must repeat the secret of the nearest announcer behind them, and `X`
/// is only allowed when the whole cycle has no announcer. Always solvable, but
/// `Θ(n)` because the secret has to travel.
pub fn secret_broadcast() -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("secret-broadcast");
    b.input_labels(&["Sa", "Sb", "c"]);
    b.output_labels(&["a", "b", "X", "a*", "b*"]);
    b.allow_node("Sa", "a*");
    b.allow_node("Sb", "b*");
    b.allow_node("c", "a");
    b.allow_node("c", "b");
    b.allow_node("c", "X");
    b.allow_edge("a", "a");
    b.allow_edge("a*", "a");
    b.allow_edge("b", "b");
    b.allow_edge("b*", "b");
    b.allow_edge("X", "X");
    for pred in ["a", "b", "X", "a*", "b*"] {
        b.allow_edge(pred, "a*");
        b.allow_edge(pred, "b*");
    }
    b.build().expect("secret-broadcast is well-formed")
}

/// A fully unconstrained problem (every output allowed everywhere): `O(1)`.
pub fn unconstrained(outputs: usize) -> NormalizedLcl {
    let mut b = NormalizedLcl::builder(format!("unconstrained-{outputs}"));
    b.input_labels(&["x", "y"]);
    let names: Vec<String> = (0..outputs).map(|i| format!("o{i}")).collect();
    b.output_labels(&names);
    b.allow_all_node_pairs();
    b.allow_all_edge_pairs();
    b.build().expect("unconstrained is well-formed")
}

/// Outputs must strictly cycle through `0 → 1 → 2 → 0 → …`, which is solvable
/// only when the cycle length is divisible by 3: unsolvable in the asymptotic
/// sense used here.
pub fn mod3_counter() -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("mod3-counter");
    b.input_labels(&["x"]);
    b.output_labels(&["0", "1", "2"]);
    b.allow_all_node_pairs();
    b.allow_edge_idx(0, 1);
    b.allow_edge_idx(1, 2);
    b.allow_edge_idx(2, 0);
    b.build().expect("mod3-counter is well-formed")
}

/// The `Π_{M_B}` problem of §3.2 for a given machine and tape size
/// (constructed through the `lcl-hardness` crate). Not part of the default
/// corpus because its normalized form exceeds the classifier's 64-output
/// limit; used by the hardness benchmarks directly.
pub fn pi_mb_for(machine_name: &str, tape_size: usize) -> PiMb {
    let machine = match machine_name {
        "unary-counter" => machines::unary_counter(),
        "binary-counter" => machines::binary_counter(),
        "always-loop" => machines::always_loop(),
        _ => machines::immediate_halt(),
    };
    PiMb::new(machine, tape_size)
}

/// Convenience: a good input (paper Definition 1) for a halting machine, or a
/// long prefix-like corrupted-free input for looping machines (which have no
/// good input).
pub fn pi_mb_good_input(
    problem: &PiMb,
    secret: Secret,
    padding: usize,
) -> Option<Vec<lcl_hardness::PiInput>> {
    problem.good_input(secret, padding)
}

/// The corpus: every problem with its known complexity.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            problem: coloring(3),
            expected: KnownComplexity::LogStar,
            why: "3-colouring needs Ω(log* n) (Linial) and is solvable by Cole–Vishkin",
        },
        CorpusEntry {
            problem: coloring(4),
            expected: KnownComplexity::LogStar,
            why: "any O(1)-colouring with ≥3 colours is Θ(log* n) on cycles",
        },
        CorpusEntry {
            problem: coloring(2),
            expected: KnownComplexity::Unsolvable,
            why: "odd cycles are not 2-colourable",
        },
        CorpusEntry {
            problem: copy_input(),
            expected: KnownComplexity::Constant,
            why: "radius-0 rule: output your own input",
        },
        CorpusEntry {
            problem: input_boundary_detection(),
            expected: KnownComplexity::Constant,
            why: "radius-1 rule: compare your input with your predecessor's",
        },
        CorpusEntry {
            problem: maximal_independent_set(),
            expected: KnownComplexity::LogStar,
            why: "MIS on cycles is Θ(log* n) (Linial lower bound, CV upper bound)",
        },
        CorpusEntry {
            problem: maximal_matching(),
            expected: KnownComplexity::LogStar,
            why: "maximal matching on cycles is Θ(log* n)",
        },
        CorpusEntry {
            problem: secret_broadcast(),
            expected: KnownComplexity::Linear,
            why: "the announced secret must propagate across the whole cycle",
        },
        CorpusEntry {
            problem: unconstrained(2),
            expected: KnownComplexity::Constant,
            why: "any fixed output works",
        },
        CorpusEntry {
            problem: mod3_counter(),
            expected: KnownComplexity::Unsolvable,
            why: "solvable only when 3 divides n",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problem::{Instance, Labeling, Topology};

    #[test]
    fn corpus_has_all_four_classes() {
        let c = corpus();
        assert!(c.len() >= 10);
        for class in [
            KnownComplexity::Unsolvable,
            KnownComplexity::Constant,
            KnownComplexity::LogStar,
            KnownComplexity::Linear,
        ] {
            assert!(
                c.iter().any(|e| e.expected == class),
                "corpus misses class {class:?}"
            );
        }
        for e in &c {
            assert!(!e.why.is_empty());
            assert!(e.problem.num_outputs() >= 1);
        }
    }

    #[test]
    fn mis_problem_accepts_actual_mis_labelings() {
        let p = maximal_independent_set();
        let inst = Instance::from_indices(Topology::Cycle, &[0; 6]);
        // I Oc I Oc I Oc: alternating MIS.
        let good = Labeling::from_indices(&[0, 1, 0, 1, 0, 1]);
        assert!(p.is_valid(&inst, &good));
        // Two adjacent I nodes are rejected.
        let bad = Labeling::from_indices(&[0, 0, 1, 0, 1, 1]);
        assert!(!p.is_valid(&inst, &bad));
        // An O node with no I neighbour is rejected: Oc must follow I.
        let uncovered = Labeling::from_indices(&[1, 1, 0, 1, 0, 1]);
        assert!(!p.is_valid(&inst, &uncovered));
    }

    #[test]
    fn matching_problem_checks_mutuality() {
        let p = maximal_matching();
        let inst = Instance::from_indices(Topology::Cycle, &[0; 4]);
        // (MS MP) (MS MP): perfect matching.
        let good = Labeling::from_indices(&[1, 0, 1, 0]);
        assert!(p.is_valid(&inst, &good));
        // A one-sided claim is rejected.
        let bad = Labeling::from_indices(&[1, 2, 1, 0]);
        assert!(!p.is_valid(&inst, &bad));
    }

    #[test]
    fn secret_broadcast_semantics() {
        let p = secret_broadcast();
        // Sa c c c: everyone repeats secret a.
        let inst = Instance::from_indices(Topology::Cycle, &[0, 2, 2, 2]);
        let good = Labeling::from_indices(&[3, 0, 0, 0]);
        assert!(p.is_valid(&inst, &good));
        // Repeating the wrong secret is rejected.
        let bad = Labeling::from_indices(&[3, 1, 1, 1]);
        assert!(!p.is_valid(&inst, &bad));
        // With no announcer, everyone may output X.
        let plain = Instance::from_indices(Topology::Cycle, &[2; 5]);
        let all_x = Labeling::from_indices(&[2; 5]);
        assert!(p.is_valid(&plain, &all_x));
    }

    #[test]
    fn pi_mb_constructors() {
        let p = pi_mb_for("unary-counter", 4);
        assert_eq!(p.machine().name(), "unary-counter");
        assert!(pi_mb_good_input(&p, Secret::A, 2).is_some());
        let looping = pi_mb_for("always-loop", 4);
        assert!(pi_mb_good_input(&looping, Secret::A, 0).is_none());
        let default = pi_mb_for("something-else", 4);
        assert_eq!(default.machine().name(), "immediate-halt");
        let bin = pi_mb_for("binary-counter", 5);
        assert_eq!(bin.tape_size(), 5);
    }

    #[test]
    fn mod3_counter_solvable_only_on_multiples_of_three() {
        let p = mod3_counter();
        let six = Instance::from_indices(Topology::Cycle, &[0; 6]);
        let good = Labeling::from_indices(&[0, 1, 2, 0, 1, 2]);
        assert!(p.is_valid(&six, &good));
        assert!(p.solve_brute_force(&six).is_some());
        let seven = Instance::from_indices(Topology::Cycle, &[0; 7]);
        assert!(p.solve_brute_force(&seven).is_none());
    }
}
