//! Integration tests for the service-ready API: the `Engine` (memo cache,
//! parallel batch, end-to-end solve), the `ProblemSpec` wire format over the
//! whole corpus, and the unified error type.

use lcl_paths::classifier::{classify, Complexity, Verdict};
use lcl_paths::problem::{Instance, NormalizedLcl, ProblemSpec, Topology, PROBLEM_SPEC_VERSION};
use lcl_paths::problems::{corpus, KnownComplexity};
use lcl_paths::{Engine, Error};
use std::sync::Arc;

/// Every corpus problem survives the spec → JSON → spec → problem round trip
/// losslessly, with a stable canonical hash and the current format version.
#[test]
fn problem_spec_roundtrips_every_corpus_entry() {
    for entry in corpus() {
        let problem = &entry.problem;
        let spec = ProblemSpec::from_problem(problem);
        assert_eq!(spec.version, PROBLEM_SPEC_VERSION, "{}", problem.name());

        let json = spec.to_json_string();
        let parsed_spec = ProblemSpec::from_json_str(&json)
            .unwrap_or_else(|e| panic!("{}: spec parse failed: {e}", problem.name()));
        assert_eq!(parsed_spec, spec, "{}", problem.name());

        let rebuilt = parsed_spec
            .to_problem()
            .unwrap_or_else(|e| panic!("{}: rebuild failed: {e}", problem.name()));
        assert_eq!(
            &rebuilt,
            problem,
            "{}: round trip not lossless",
            problem.name()
        );
        assert_eq!(
            rebuilt.canonical_hash(),
            problem.canonical_hash(),
            "{}: canonical hash not stable across serialization",
            problem.name()
        );

        // Serializing the rebuilt problem reproduces the same canonical JSON.
        assert_eq!(rebuilt.to_json_string(), json, "{}", problem.name());
    }
}

/// Corpus problems are pairwise structurally distinct, so the canonical hash
/// must separate all of them.
#[test]
fn corpus_canonical_hashes_are_distinct() {
    let entries = corpus();
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            assert_ne!(
                a.problem.canonical_hash(),
                b.problem.canonical_hash(),
                "hash collision between {} and {}",
                a.problem.name(),
                b.problem.name()
            );
        }
    }
}

/// A second classification of the same problem must be served from the memo
/// cache: the miss counter stays put, the hit counter moves, and both calls
/// share one allocation (so no semigroup recomputation can have happened).
#[test]
fn second_classification_is_a_cache_hit() {
    let engine = Engine::new();
    let problem = corpus()[0].problem.clone();

    let first = engine.classify(&problem).expect("classification");
    let after_first = engine.cache_stats();
    assert_eq!(after_first.misses, 1);
    assert_eq!(after_first.hits, 0);
    assert_eq!(after_first.entries, 1);

    let second = engine.classify(&problem).expect("classification");
    let after_second = engine.cache_stats();
    assert_eq!(after_second.misses, 1, "second call recomputed the problem");
    assert_eq!(after_second.hits, 1);
    assert!(
        Arc::ptr_eq(&first, &second),
        "cache hit must return the identical classification"
    );

    // A structurally identical problem under a different name also hits.
    let mut renamed = NormalizedLcl::builder("renamed-copy");
    renamed.input_alphabet(problem.input_alphabet().clone());
    renamed.output_alphabet(problem.output_alphabet().clone());
    for (i, o) in problem.allowed_node_pairs() {
        renamed.allow_node_idx(i, o);
    }
    for (p, q) in problem.allowed_edge_pairs() {
        renamed.allow_edge_idx(p, q);
    }
    let renamed = renamed.build().expect("renamed copy builds");
    engine.classify(&renamed).expect("classification");
    assert_eq!(engine.cache_stats().hits, 2);
    assert_eq!(engine.cache_stats().misses, 1);
}

/// `classify_many` over the full corpus agrees verdict-for-verdict with
/// sequential `classify`, in input order, at several parallelism levels.
#[test]
fn classify_many_agrees_with_sequential_classify() {
    let entries = corpus();
    let problems: Vec<NormalizedLcl> = entries.iter().map(|e| e.problem.clone()).collect();

    let sequential: Vec<Complexity> = problems
        .iter()
        .map(|p| classify(p).expect("sequential classification").complexity())
        .collect();

    for workers in [1, 4, 8] {
        let engine = Engine::builder().parallelism(workers).build();
        let batch = engine.classify_many(&problems);
        assert_eq!(batch.len(), problems.len());
        for ((problem, result), expected) in problems.iter().zip(&batch).zip(&sequential) {
            let classification = result
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: batch classification failed: {e}", problem.name()));
            assert_eq!(
                &classification.complexity(),
                expected,
                "{} disagrees at parallelism {workers}",
                problem.name()
            );
        }
        // The batch populated the cache: every distinct problem was a miss,
        // and a re-run is all hits.
        let before = engine.cache_stats();
        assert_eq!(before.misses as usize, problems.len());
        let _ = engine.classify_many(&problems);
        let after = engine.cache_stats();
        assert_eq!(after.misses, before.misses, "re-run must not recompute");
        assert_eq!(after.hits, before.hits + problems.len() as u64);
    }
}

/// The batch verdicts also match the corpus ground truths.
#[test]
fn classify_many_matches_ground_truth() {
    let entries = corpus();
    let problems: Vec<NormalizedLcl> = entries.iter().map(|e| e.problem.clone()).collect();
    let engine = Engine::new();
    for (entry, result) in entries.iter().zip(engine.classify_many(&problems)) {
        let got = result.expect("classification").complexity();
        let expected = match entry.expected {
            KnownComplexity::Unsolvable => Complexity::Unsolvable,
            KnownComplexity::Constant => Complexity::Constant,
            KnownComplexity::LogStar => Complexity::LogStar,
            KnownComplexity::Linear => Complexity::Linear,
        };
        assert_eq!(got, expected, "{}", entry.problem.name());
    }
}

/// End-to-end solve on a solvable corpus problem returns a verified labeling
/// and a plausible round count.
#[test]
fn solve_returns_valid_labeling_and_rounds() {
    let engine = Engine::new();
    for entry in corpus() {
        if entry.expected == KnownComplexity::Unsolvable {
            continue;
        }
        let n = 48;
        let inputs: Vec<u16> = (0..n)
            .map(|i| (i % entry.problem.num_inputs()) as u16)
            .collect();
        let instance = Instance::from_indices(Topology::Cycle, &inputs);
        let solution = engine
            .solve(&entry.problem, &instance)
            .unwrap_or_else(|e| panic!("{}: solve failed: {e}", entry.problem.name()));
        assert!(
            entry.problem.is_valid(&instance, solution.labeling()),
            "{}: invalid labeling",
            entry.problem.name()
        );
        assert!(
            solution.rounds() <= n,
            "{}: round count {} exceeds n",
            entry.problem.name(),
            solution.rounds()
        );
    }
}

/// Engine verdicts serialize to JSON and round-trip, for every corpus entry.
#[test]
fn verdicts_roundtrip_over_the_corpus() {
    let engine = Engine::new();
    for entry in corpus() {
        let verdict = engine
            .verdict(&entry.problem)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
        assert_eq!(verdict.problem_hash, entry.problem.canonical_hash());
        let back = Verdict::from_json_str(&verdict.to_json_string())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
        assert_eq!(back, verdict, "{}", entry.problem.name());
    }
}

/// Concurrency stress for the sharded memo cache: 8 threads hammer
/// `classify` over an overlapping keyspace with the cache squeezed to 8
/// entries (one slot per shard), so hit-touch, miss-stampede, insert-race
/// and eviction all interleave constantly. While they run, an observer
/// samples `cache_stats()` and checks the live invariants; afterwards the
/// quiescent counters must balance exactly.
#[test]
fn concurrent_classify_stress_keeps_cache_invariants() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    const THREADS: usize = 8;
    const PASSES: usize = 2;
    const CAPACITY: usize = 8;

    let problems: Vec<NormalizedLcl> = corpus().into_iter().map(|e| e.problem).collect();
    // Ground truth: every verdict a stressed engine returns must be
    // byte-identical to a cold engine's recompute.
    let reference = Engine::builder().parallelism(1).build();
    let expected: Vec<String> = problems
        .iter()
        .map(|p| {
            reference
                .verdict(p)
                .expect("reference verdict")
                .to_json_string()
        })
        .collect();

    let engine = Engine::builder()
        .parallelism(2)
        .cache_capacity(CAPACITY)
        .cache_shards(CAPACITY)
        .build();
    assert_eq!(engine.cache_shards(), CAPACITY);

    // Counted via a drop guard so a panicking worker still counts down —
    // otherwise the observer loop below would spin forever and turn a test
    // failure into a CI hang (the scope join propagates the panic after).
    struct Done<'a>(&'a AtomicUsize);
    impl Drop for Done<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Release);
        }
    }

    let finished = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let problems = &problems;
            let expected = &expected;
            let finished = &finished;
            scope.spawn(move || {
                let _done = Done(finished);
                for pass in 0..PASSES {
                    // Every thread sweeps the same overlapping keyspace in a
                    // different rotation, so the same keys are concurrently
                    // hit, missed, inserted and evicted.
                    for i in 0..problems.len() {
                        let at = (i + t * 3 + pass) % problems.len();
                        let classification =
                            engine.classify(&problems[at]).expect("stressed classify");
                        let verdict = Verdict::new(&problems[at], &classification);
                        assert_eq!(
                            verdict.to_json_string(),
                            expected[at],
                            "thread {t}: verdict diverged under stress for {}",
                            problems[at].name()
                        );
                    }
                }
            });
        }
        // Observer: every sample, even mid-stampede, must respect the
        // capacity bound and the per-shard snapshot consistency that the
        // single-critical-section counter updates guarantee.
        while finished.load(Ordering::Acquire) < THREADS {
            let stats = engine.cache_stats();
            assert!(
                stats.entries <= CAPACITY,
                "live entries {} exceeded capacity {CAPACITY}",
                stats.entries
            );
            for (i, shard) in engine.cache_shard_stats().iter().enumerate() {
                assert!(
                    shard.is_consistent(),
                    "shard {i} snapshot inconsistent mid-run: {shard:?}"
                );
            }
            std::thread::yield_now();
        }
    });

    // Quiescent: every lookup was exactly one hit or one miss, nothing was
    // lost to a poisoned lock, and the books balance.
    let stats = engine.cache_stats();
    let lookups = (THREADS * PASSES * problems.len()) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every classify counts exactly one hit or miss: {stats}"
    );
    assert!(stats.entries <= CAPACITY);
    assert_eq!(
        stats.entries as u64 + stats.evictions,
        stats.inserts,
        "quiescent snapshot must balance: {stats}"
    );
    assert!(stats.peak_entries <= CAPACITY);
    // The engine (and its locks) survived: a fresh problem still classifies.
    assert!(engine.classify(&problems[0]).is_ok());
}

/// The `cache_stats()` consistency fix: the old implementation sampled the
/// entry count and the eviction counters from different synchronization
/// domains, so `entries + evictions` could disagree with `inserts` even at
/// rest. The per-shard snapshot must balance exactly after a quiescent run —
/// and stay balanced across an explicit `clear_cache`.
#[test]
fn cache_stats_snapshot_balances_after_quiescence() {
    let problems: Vec<NormalizedLcl> = corpus().into_iter().map(|e| e.problem).collect();
    let engine = Engine::builder()
        .parallelism(4)
        .cache_capacity(4)
        .cache_shards(2)
        .build();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let engine = &engine;
            let problems = &problems;
            scope.spawn(move || {
                for i in 0..problems.len() {
                    engine
                        .classify(&problems[(i + t) % problems.len()])
                        .expect("classify");
                }
            });
        }
    });
    let stats = engine.cache_stats();
    assert_eq!(
        stats.entries as u64 + stats.evictions,
        stats.inserts,
        "{stats}"
    );
    for shard in engine.cache_shard_stats() {
        assert!(shard.is_consistent(), "{shard:?}");
    }
    engine.clear_cache();
    let cleared = engine.cache_stats();
    assert_eq!(cleared.entries, 0);
    assert_eq!(cleared.evictions, cleared.inserts, "clear keeps the books");
}

/// The unified error type accepts errors from any subsystem through `?`.
#[test]
fn unified_error_spans_subsystems() {
    fn fails_in_problem() -> Result<(), Error> {
        NormalizedLcl::builder("empty").build()?;
        Ok(())
    }
    fn fails_in_classifier() -> Result<(), Error> {
        let engine = Engine::builder().type_budget(1).build();
        engine.classify(&corpus()[0].problem)?;
        Ok(())
    }
    assert!(matches!(fails_in_problem(), Err(Error::Problem(_))));
    assert!(matches!(fails_in_classifier(), Err(Error::Classifier(_))));
}
