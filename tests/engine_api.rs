//! Integration tests for the service-ready API: the `Engine` (memo cache,
//! parallel batch, end-to-end solve), the `ProblemSpec` wire format over the
//! whole corpus, and the unified error type.

use lcl_paths::classifier::{classify, Complexity, Verdict};
use lcl_paths::problem::{Instance, NormalizedLcl, ProblemSpec, Topology, PROBLEM_SPEC_VERSION};
use lcl_paths::problems::{corpus, KnownComplexity};
use lcl_paths::{Engine, Error};
use std::sync::Arc;

/// Every corpus problem survives the spec → JSON → spec → problem round trip
/// losslessly, with a stable canonical hash and the current format version.
#[test]
fn problem_spec_roundtrips_every_corpus_entry() {
    for entry in corpus() {
        let problem = &entry.problem;
        let spec = ProblemSpec::from_problem(problem);
        assert_eq!(spec.version, PROBLEM_SPEC_VERSION, "{}", problem.name());

        let json = spec.to_json_string();
        let parsed_spec = ProblemSpec::from_json_str(&json)
            .unwrap_or_else(|e| panic!("{}: spec parse failed: {e}", problem.name()));
        assert_eq!(parsed_spec, spec, "{}", problem.name());

        let rebuilt = parsed_spec
            .to_problem()
            .unwrap_or_else(|e| panic!("{}: rebuild failed: {e}", problem.name()));
        assert_eq!(
            &rebuilt,
            problem,
            "{}: round trip not lossless",
            problem.name()
        );
        assert_eq!(
            rebuilt.canonical_hash(),
            problem.canonical_hash(),
            "{}: canonical hash not stable across serialization",
            problem.name()
        );

        // Serializing the rebuilt problem reproduces the same canonical JSON.
        assert_eq!(rebuilt.to_json_string(), json, "{}", problem.name());
    }
}

/// Corpus problems are pairwise structurally distinct, so the canonical hash
/// must separate all of them.
#[test]
fn corpus_canonical_hashes_are_distinct() {
    let entries = corpus();
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            assert_ne!(
                a.problem.canonical_hash(),
                b.problem.canonical_hash(),
                "hash collision between {} and {}",
                a.problem.name(),
                b.problem.name()
            );
        }
    }
}

/// A second classification of the same problem must be served from the memo
/// cache: the miss counter stays put, the hit counter moves, and both calls
/// share one allocation (so no semigroup recomputation can have happened).
#[test]
fn second_classification_is_a_cache_hit() {
    let engine = Engine::new();
    let problem = corpus()[0].problem.clone();

    let first = engine.classify(&problem).expect("classification");
    let after_first = engine.cache_stats();
    assert_eq!(after_first.misses, 1);
    assert_eq!(after_first.hits, 0);
    assert_eq!(after_first.entries, 1);

    let second = engine.classify(&problem).expect("classification");
    let after_second = engine.cache_stats();
    assert_eq!(after_second.misses, 1, "second call recomputed the problem");
    assert_eq!(after_second.hits, 1);
    assert!(
        Arc::ptr_eq(&first, &second),
        "cache hit must return the identical classification"
    );

    // A structurally identical problem under a different name also hits.
    let mut renamed = NormalizedLcl::builder("renamed-copy");
    renamed.input_alphabet(problem.input_alphabet().clone());
    renamed.output_alphabet(problem.output_alphabet().clone());
    for (i, o) in problem.allowed_node_pairs() {
        renamed.allow_node_idx(i, o);
    }
    for (p, q) in problem.allowed_edge_pairs() {
        renamed.allow_edge_idx(p, q);
    }
    let renamed = renamed.build().expect("renamed copy builds");
    engine.classify(&renamed).expect("classification");
    assert_eq!(engine.cache_stats().hits, 2);
    assert_eq!(engine.cache_stats().misses, 1);
}

/// `classify_many` over the full corpus agrees verdict-for-verdict with
/// sequential `classify`, in input order, at several parallelism levels.
#[test]
fn classify_many_agrees_with_sequential_classify() {
    let entries = corpus();
    let problems: Vec<NormalizedLcl> = entries.iter().map(|e| e.problem.clone()).collect();

    let sequential: Vec<Complexity> = problems
        .iter()
        .map(|p| classify(p).expect("sequential classification").complexity())
        .collect();

    for workers in [1, 4, 8] {
        let engine = Engine::builder().parallelism(workers).build();
        let batch = engine.classify_many(&problems);
        assert_eq!(batch.len(), problems.len());
        for ((problem, result), expected) in problems.iter().zip(&batch).zip(&sequential) {
            let classification = result
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: batch classification failed: {e}", problem.name()));
            assert_eq!(
                &classification.complexity(),
                expected,
                "{} disagrees at parallelism {workers}",
                problem.name()
            );
        }
        // The batch populated the cache: every distinct problem was a miss,
        // and a re-run is all hits.
        let before = engine.cache_stats();
        assert_eq!(before.misses as usize, problems.len());
        let _ = engine.classify_many(&problems);
        let after = engine.cache_stats();
        assert_eq!(after.misses, before.misses, "re-run must not recompute");
        assert_eq!(after.hits, before.hits + problems.len() as u64);
    }
}

/// The batch verdicts also match the corpus ground truths.
#[test]
fn classify_many_matches_ground_truth() {
    let entries = corpus();
    let problems: Vec<NormalizedLcl> = entries.iter().map(|e| e.problem.clone()).collect();
    let engine = Engine::new();
    for (entry, result) in entries.iter().zip(engine.classify_many(&problems)) {
        let got = result.expect("classification").complexity();
        let expected = match entry.expected {
            KnownComplexity::Unsolvable => Complexity::Unsolvable,
            KnownComplexity::Constant => Complexity::Constant,
            KnownComplexity::LogStar => Complexity::LogStar,
            KnownComplexity::Linear => Complexity::Linear,
        };
        assert_eq!(got, expected, "{}", entry.problem.name());
    }
}

/// End-to-end solve on a solvable corpus problem returns a verified labeling
/// and a plausible round count.
#[test]
fn solve_returns_valid_labeling_and_rounds() {
    let engine = Engine::new();
    for entry in corpus() {
        if entry.expected == KnownComplexity::Unsolvable {
            continue;
        }
        let n = 48;
        let inputs: Vec<u16> = (0..n)
            .map(|i| (i % entry.problem.num_inputs()) as u16)
            .collect();
        let instance = Instance::from_indices(Topology::Cycle, &inputs);
        let solution = engine
            .solve(&entry.problem, &instance)
            .unwrap_or_else(|e| panic!("{}: solve failed: {e}", entry.problem.name()));
        assert!(
            entry.problem.is_valid(&instance, solution.labeling()),
            "{}: invalid labeling",
            entry.problem.name()
        );
        assert!(
            solution.rounds() <= n,
            "{}: round count {} exceeds n",
            entry.problem.name(),
            solution.rounds()
        );
    }
}

/// Engine verdicts serialize to JSON and round-trip, for every corpus entry.
#[test]
fn verdicts_roundtrip_over_the_corpus() {
    let engine = Engine::new();
    for entry in corpus() {
        let verdict = engine
            .verdict(&entry.problem)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
        assert_eq!(verdict.problem_hash, entry.problem.canonical_hash());
        let back = Verdict::from_json_str(&verdict.to_json_string())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
        assert_eq!(back, verdict, "{}", entry.problem.name());
    }
}

/// The unified error type accepts errors from any subsystem through `?`.
#[test]
fn unified_error_spans_subsystems() {
    fn fails_in_problem() -> Result<(), Error> {
        NormalizedLcl::builder("empty").build()?;
        Ok(())
    }
    fn fails_in_classifier() -> Result<(), Error> {
        let engine = Engine::builder().type_budget(1).build();
        engine.classify(&corpus()[0].problem)?;
        Ok(())
    }
    assert!(matches!(fails_in_problem(), Err(Error::Problem(_))));
    assert!(matches!(fails_in_classifier(), Err(Error::Classifier(_))));
}
