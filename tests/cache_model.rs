//! Model-based correctness suite for the sharded O(1)-LRU memo cache.
//!
//! The same random op trace (peeks, classify-style get→miss→insert cycles,
//! blind inserts, occasional clears — at tiny capacities, so evictions are
//! constant) is driven through [`ShardedLruCache`] and a naive single-map
//! reference model whose per-shard recency is a plain `Vec` with linear
//! scans: obviously-correct LRU semantics, none of the slab/intrusive-list
//! machinery under test. Every op must agree exactly — returned values,
//! keep-first winners, *which keys* were evicted — and the final per-shard
//! and aggregate counters must be identical. With one shard the reference
//! model *is* the old engine's global LRU, so that configuration doubles as
//! the old-victim-order regression at property-test scale.
//!
//! The suite runs the matrix twice: once **count-bounded** (the unit-weigher
//! default, where an insert evicts at most one victim) and once
//! **weight-bounded** (`ShardedLruCache::with_weigher` with a deterministic
//! non-unit weigher, where one heavy insert may evict several light entries
//! and an over-heavy entry parks alone). The model mirrors both with the
//! same evict-from-the-back loop.
//!
//! Since the single-flight/fast-lane change, the suite also covers the
//! **concurrency semantics**: the sequential traces exercise
//! `get_or_compute` (with failing closures — errors are never cached) and
//! the reference model mirrors the hit/leader accounting, while the
//! multi-threaded tests at the bottom assert the single-flight contract
//! itself — exactly one leader per cold key per generation, every joiner
//! observing the leader's value, panicking leaders recovered by a successor
//! — at shard counts 1, 2 and 8. Single-threaded, the `try_lock` recency
//! touch always succeeds, so every hit is a *locked* hit and the exact-LRU
//! victim agreement asserted here is untouched by the fast lane.
//!
//! Per house style (see tests/properties.rs) the generators are seeded
//! `StdRng`s, so every failure reproduces exactly from its case index.

use lcl_paths::classifier::cache::{FlightOutcome, ShardStats, ShardedLruCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const CASES: u64 = 24;
const OPS: usize = 500;

/// How the cache under test is bounded.
#[derive(Copy, Clone, Debug)]
enum Bound {
    /// `ShardedLruCache::new(capacity, _)`: every entry weighs 1.
    Count(usize),
    /// `ShardedLruCache::with_weigher(total_weight, _, weigh)`.
    Weight(u64),
}

/// The deterministic non-unit weigher both the real cache and the model use
/// in weighted traces: weights 1..=7 derived from the value.
fn weigh(value: &u64) -> u64 {
    *value % 7 + 1
}

/// One shard of the reference model: a recency-ordered vector (front = most
/// recently used) plus the same counters and budgets the real shard keeps.
struct ModelShard {
    capacity: usize,
    weight_capacity: u64,
    weigher: fn(&u64) -> u64,
    /// Front = most recently used; eviction victims pop off the back.
    /// Each entry remembers the weight it was priced at insert time.
    entries: Vec<(Vec<u8>, u64, u64)>,
    /// Single-threaded, the recency `try_lock` always succeeds, so every
    /// model hit is a *locked* hit (`fast_hits` and `flight_joins` stay 0).
    locked_hits: u64,
    misses: u64,
    flight_leaders: u64,
    inserts: u64,
    evictions: u64,
    peak_entries: usize,
    weight: u64,
    peak_weight: u64,
}

impl ModelShard {
    fn new(capacity: usize, weight_capacity: u64, weigher: fn(&u64) -> u64) -> Self {
        ModelShard {
            capacity,
            weight_capacity,
            weigher,
            entries: Vec::new(),
            locked_hits: 0,
            misses: 0,
            flight_leaders: 0,
            inserts: 0,
            evictions: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<u64> {
        let at = self.entries.iter().position(|(k, _, _)| k == key)?;
        let entry = self.entries.remove(at);
        let value = entry.1;
        self.entries.insert(0, entry);
        self.locked_hits += 1;
        Some(value)
    }

    /// Returns `(winning value, fresh, evicted keys)` with the same
    /// keep-first and evict-until-it-fits semantics as the real cache.
    fn insert(&mut self, key: Vec<u8>, value: u64) -> (u64, bool, Vec<Vec<u8>>) {
        if let Some(at) = self.entries.iter().position(|(k, _, _)| *k == key) {
            let entry = self.entries.remove(at);
            let winner = entry.1;
            self.entries.insert(0, entry);
            return (winner, false, Vec::new());
        }
        let weight = (self.weigher)(&value);
        self.entries.insert(0, (key, value, weight));
        self.weight += weight;
        let mut evicted = Vec::new();
        while (self.entries.len() > self.capacity || self.weight > self.weight_capacity)
            && self.entries.len() > 1
        {
            let (victim, _, victim_weight) = self.entries.pop().expect("guarded non-empty");
            self.weight -= victim_weight;
            self.evictions += 1;
            evicted.push(victim);
        }
        self.inserts += 1;
        self.peak_entries = self.peak_entries.max(self.entries.len());
        self.peak_weight = self.peak_weight.max(self.weight);
        (value, true, evicted)
    }

    fn clear(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
        self.weight = 0;
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.locked_hits,
            misses: self.misses,
            entries: self.entries.len(),
            evictions: self.evictions,
            inserts: self.inserts,
            peak_entries: self.peak_entries,
            weight: self.weight,
            peak_weight: self.peak_weight,
            fast_hits: 0,
            locked_hits: self.locked_hits,
            flight_leaders: self.flight_leaders,
            flight_joins: 0,
            // The reply-bytes lane is driven by the engine's reply
            // attachment, never by raw cache ops, so the model stays at 0.
            bytes_hits: 0,
            bytes_misses: 0,
        }
    }
}

/// The reference model: one naive shard per real shard, with the routing
/// delegated to the real cache's public `shard_of` (the placement function is
/// shared; the LRU/counter semantics are what differ and what we compare).
/// Budgets are partitioned across shards exactly as the real cache does it:
/// base share plus one unit of remainder for the first shards.
struct Model {
    shards: Vec<ModelShard>,
}

impl Model {
    fn new(cache: &ShardedLruCache<u64>, bound: Bound) -> Self {
        let n = cache.shards();
        let shards = (0..n)
            .map(|i| match bound {
                Bound::Count(capacity) => {
                    let base = capacity / n;
                    let extra = capacity % n;
                    ModelShard::new(base + usize::from(i < extra), u64::MAX, |_| 1)
                }
                Bound::Weight(total) => {
                    let base = total / n as u64;
                    let extra = total % n as u64;
                    ModelShard::new(usize::MAX, base + u64::from((i as u64) < extra), weigh)
                }
            })
            .collect();
        Model { shards }
    }
}

fn key(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

/// Drives one seeded trace through both implementations, asserting agreement
/// op by op and counter by counter.
fn run_trace(case: u64, bound: Bound, shards: usize) {
    let mut rng = StdRng::seed_from_u64(0xCAC4E + case);
    let cache = match bound {
        Bound::Count(capacity) => ShardedLruCache::new(capacity, shards),
        Bound::Weight(total) => ShardedLruCache::with_weigher(total, shards, weigh),
    };
    let mut model = Model::new(&cache, bound);
    // Keys overlap heavily: a universe of ~3x the expected resident entry
    // count keeps both hits and evictions frequent at these tiny budgets
    // (weighted entries average weight 4, so ~total/4 fit).
    let universe = match bound {
        Bound::Count(capacity) => (capacity as u64) * 3,
        Bound::Weight(total) => (total * 3 / 4).max(4),
    };
    let mut next_value = 0u64;

    for op in 0..OPS {
        let k = key(rng.gen_range(0..universe));
        let shard = cache.shard_of(&k);
        let ctx = format!("case {case}, op {op}, {bound:?}, shards {shards}");
        match rng.gen_range(0..100u32) {
            // Peek (Engine::cached): a hit touches and counts, a miss is free.
            0..=24 => {
                assert_eq!(cache.get(&k), model.shards[shard].get(&k), "{ctx}");
            }
            // Classify-shaped cycle driven by hand: get, and on a miss
            // record the miss and insert the freshly "computed" value.
            25..=54 => {
                let got = cache.get(&k);
                assert_eq!(got, model.shards[shard].get(&k), "{ctx}");
                if got.is_none() {
                    cache.record_miss(&k);
                    model.shards[shard].misses += 1;
                    next_value += 1;
                    let real = cache.insert(k.clone(), next_value);
                    let (value, fresh, evicted) = model.shards[shard].insert(k, next_value);
                    assert_eq!(real.value, value, "{ctx}");
                    assert_eq!(real.fresh, fresh, "{ctx}");
                    let real_evicted: Vec<Vec<u8>> =
                        real.evicted.iter().map(|k| k.to_vec()).collect();
                    assert_eq!(real_evicted, evicted, "{ctx}: wrong eviction victims");
                }
            }
            // The same cycle through the single-flight front door, with the
            // occasional failing computation (errors are never cached).
            // Single-threaded there is no one to join and the recency
            // try_lock always succeeds, so the outcome must be LockedHit on
            // a warm key and Led on a cold one.
            55..=74 => {
                let fails = rng.gen_range(0..8u32) == 0;
                next_value += 1;
                let candidate = next_value;
                let expected = model.shards[shard].get(&k);
                let real = cache.get_or_compute(&k, || {
                    if fails {
                        Err("compute failed")
                    } else {
                        Ok(candidate)
                    }
                });
                match expected {
                    Some(value) => {
                        let computed = real.unwrap_or_else(|e| panic!("{ctx}: hit errored: {e}"));
                        assert_eq!(computed.value, value, "{ctx}");
                        assert_eq!(computed.outcome, FlightOutcome::LockedHit, "{ctx}");
                        assert!(computed.outcome.served_from_cache(), "{ctx}");
                    }
                    None if fails => {
                        // The failed leader counted its miss and election
                        // but inserted nothing.
                        assert_eq!(real.unwrap_err(), "compute failed", "{ctx}");
                        model.shards[shard].misses += 1;
                        model.shards[shard].flight_leaders += 1;
                    }
                    None => {
                        let computed = real.unwrap_or_else(|e| panic!("{ctx}: led errored: {e}"));
                        assert_eq!(computed.value, candidate, "{ctx}");
                        assert_eq!(computed.outcome, FlightOutcome::Led, "{ctx}");
                        assert!(!computed.outcome.served_from_cache(), "{ctx}");
                        model.shards[shard].misses += 1;
                        model.shards[shard].flight_leaders += 1;
                        let (value, fresh, _evicted) = model.shards[shard].insert(k, candidate);
                        assert_eq!(value, candidate, "{ctx}");
                        assert!(fresh, "{ctx}: the key was cold");
                    }
                }
            }
            // Blind insert, possibly racing a present key (keep-first).
            75..=97 => {
                next_value += 1;
                let real = cache.insert(k.clone(), next_value);
                let (value, fresh, evicted) = model.shards[shard].insert(k, next_value);
                assert_eq!(real.value, value, "{ctx}");
                assert_eq!(real.fresh, fresh, "{ctx}");
                let real_evicted: Vec<Vec<u8>> = real.evicted.iter().map(|k| k.to_vec()).collect();
                assert_eq!(real_evicted, evicted, "{ctx}: wrong eviction victims");
            }
            // Rare clear: counters survive, dropped entries count as evicted.
            _ => {
                cache.clear();
                for shard in &mut model.shards {
                    shard.clear();
                }
            }
        }
    }

    // Identical outcomes imply identical counters — per shard and aggregate.
    let real = cache.shard_stats();
    let reference: Vec<ShardStats> = model.shards.iter().map(ModelShard::stats).collect();
    assert_eq!(real, reference, "case {case}: per-shard stats diverged");
    let total = cache.stats();
    assert_eq!(total.shards, cache.shards(), "case {case}");
    assert_eq!(
        (
            total.hits,
            total.misses,
            total.entries,
            total.evictions,
            total.weight
        ),
        (
            reference.iter().map(|s| s.hits).sum::<u64>(),
            reference.iter().map(|s| s.misses).sum::<u64>(),
            reference.iter().map(|s| s.entries).sum::<usize>(),
            reference.iter().map(|s| s.evictions).sum::<u64>(),
            reference.iter().map(|s| s.weight).sum::<u64>(),
        ),
        "case {case}: aggregate stats diverged"
    );
    assert_eq!(
        (total.fast_hits, total.locked_hits, total.flight_joins),
        (0, reference.iter().map(|s| s.locked_hits).sum::<u64>(), 0),
        "case {case}: single-threaded hits are all locked hits"
    );
    assert_eq!(
        total.hits,
        total.fast_hits + total.locked_hits + total.flight_joins,
        "case {case}: hit accounting"
    );
    assert_eq!(
        total.flight_leaders,
        reference.iter().map(|s| s.flight_leaders).sum::<u64>(),
        "case {case}: leader elections diverged"
    );
    for (i, shard) in real.iter().enumerate() {
        assert!(
            shard.is_consistent(),
            "case {case}, shard {i}: snapshot invariants violated: {shard:?}"
        );
    }
    match bound {
        Bound::Count(capacity) => {
            assert!(total.entries <= capacity, "case {case}: capacity exceeded");
            assert_eq!(
                total.weight, total.entries as u64,
                "case {case}: unit weigher must price every entry at 1"
            );
        }
        Bound::Weight(_) => {
            // Each shard respects its weight budget, except for the
            // documented single-over-heavy-entry allowance.
            for (i, (shard, reference)) in real.iter().zip(&model.shards).enumerate() {
                assert!(
                    shard.weight <= reference.weight_capacity || shard.entries == 1,
                    "case {case}, shard {i}: over budget with multiple entries: {shard:?}"
                );
            }
        }
    }
}

/// The count-bounded acceptance matrix: shard counts 1, 2 and 8 at several
/// tiny capacities, each driven through `CASES` independently seeded traces.
#[test]
fn sharded_cache_agrees_with_naive_reference_model() {
    for &(capacity, shards) in &[(4, 1), (7, 1), (5, 2), (8, 2), (8, 8), (13, 8), (32, 8)] {
        for case in 0..CASES {
            run_trace(case, Bound::Count(capacity), shards);
        }
    }
}

/// The weight-bounded matrix: the same trace shapes against tiny weight
/// budgets, where single inserts evict several victims and over-heavy
/// entries park alone.
#[test]
fn weighted_cache_agrees_with_weighted_reference_model() {
    for &(total_weight, shards) in &[(6, 1), (11, 1), (16, 2), (29, 2), (40, 8), (64, 8)] {
        for case in 0..CASES {
            run_trace(case, Bound::Weight(total_weight), shards);
        }
    }
}

/// A requested shard count the capacity cannot sustain is clamped, and the
/// clamped cache still matches the model built on the effective count.
#[test]
fn clamped_shard_counts_still_match_the_model() {
    let cache = ShardedLruCache::<u64>::new(3, 8);
    assert_eq!(
        cache.shards(),
        2,
        "largest power of two with >= 1 slot each"
    );
    for case in 0..CASES {
        run_trace(case, Bound::Count(3), 8);
    }
    // Same clamp under a weight bound: budget 3 sustains at most 2 shards.
    let weighted = ShardedLruCache::<u64>::with_weigher(3, 8, weigh);
    assert_eq!(weighted.shards(), 2);
    for case in 0..CASES {
        run_trace(case, Bound::Weight(3), 8);
    }
}

/// The value the one legitimate computation for `key_index` produces; every
/// joiner must observe exactly this.
fn committed_value(key_index: u64) -> u64 {
    key_index * 31 + 7
}

/// The single-flight contract under real concurrency: 8 threads hammer an
/// overlapping key set through `get_or_compute` (the capacity is large
/// enough that nothing is evicted, so each key has exactly one generation),
/// with a mix of slow and fast compute closures. A per-key atomic counts
/// *actual* closure executions: exactly one leader per cold key, however
/// many threads race it, and every thread observes the leader's value.
#[test]
fn concurrent_get_or_compute_elects_exactly_one_leader_per_key() {
    const THREADS: usize = 8;
    const KEYS: u64 = 16;
    for &shards in &[1usize, 2, 8] {
        let cache = Arc::new(ShardedLruCache::<u64>::new(64, shards));
        let computed: Arc<Vec<AtomicU64>> =
            Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
        let barrier = Arc::new(Barrier::new(THREADS));

        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    // Each thread walks the keys in its own seeded order, so
                    // different keys are cold for different threads at
                    // different times.
                    let mut rng = StdRng::seed_from_u64(0xF11657 + thread as u64);
                    let mut order: Vec<u64> = (0..KEYS).collect();
                    use rand::seq::SliceRandom;
                    order.shuffle(&mut rng);
                    barrier.wait();
                    for &i in &order {
                        let slow = i % 3 == 0;
                        let result = cache
                            .get_or_compute::<()>(&key(i), || {
                                computed[i as usize].fetch_add(1, Ordering::SeqCst);
                                if slow {
                                    // A slow leader keeps its flight open long
                                    // enough for joiners to pile up.
                                    std::thread::sleep(std::time::Duration::from_millis(1));
                                }
                                Ok(committed_value(i))
                            })
                            .expect("compute never fails here");
                        assert_eq!(
                            result.value,
                            committed_value(i),
                            "shards {shards}: every thread observes the leader's value"
                        );
                    }
                });
            }
        });

        for (i, count) in computed.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "shards {shards}, key {i}: cold key computed more than once"
            );
        }
        let total = cache.stats();
        assert_eq!(total.flight_leaders, KEYS, "shards {shards}");
        assert_eq!(total.misses, KEYS, "shards {shards}");
        assert_eq!(total.inserts, KEYS, "shards {shards}");
        assert_eq!(total.entries, KEYS as usize, "nothing was evicted");
        assert_eq!(
            total.hits + total.misses,
            (THREADS as u64) * KEYS,
            "shards {shards}: every call is exactly one of hit/join/lead: {total:?}"
        );
        for (i, shard) in cache.shard_stats().iter().enumerate() {
            assert!(
                shard.is_consistent(),
                "shards {shards}, shard {i}: {shard:?}"
            );
        }
        assert_eq!(cache.flight_waiters(), 0, "no flight outlives the trace");
    }
}

/// Panic recovery at every shard count: the first computation of every even
/// key panics its leader. Waiters must wake, elect a successor, and end up
/// with the committed value; the pool of threads never deadlocks and no
/// cache lock stays poisoned. The per-key attempt counter proves the
/// recovery is *minimal*: exactly one extra computation per panicked key.
#[test]
fn panicking_leaders_are_replaced_without_extra_computations() {
    const THREADS: usize = 8;
    const KEYS: u64 = 8;
    for &shards in &[1usize, 2, 8] {
        let cache = Arc::new(ShardedLruCache::<u64>::new(64, shards));
        let attempts: Arc<Vec<AtomicU64>> =
            Arc::new((0..KEYS).map(|_| AtomicU64::new(0)).collect());
        let barrier = Arc::new(Barrier::new(THREADS));

        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let cache = Arc::clone(&cache);
                let attempts = Arc::clone(&attempts);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xDEAD + thread as u64);
                    let mut order: Vec<u64> = (0..KEYS).collect();
                    use rand::seq::SliceRandom;
                    order.shuffle(&mut rng);
                    barrier.wait();
                    for &i in &order {
                        // Retry until served: a thread that inherits the
                        // panicking first attempt propagates that panic (as
                        // the engine would) and must be able to come back.
                        loop {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    cache.get_or_compute::<()>(&key(i), || {
                                        let n = attempts[i as usize].fetch_add(1, Ordering::SeqCst);
                                        if n == 0 && i % 2 == 0 {
                                            panic!("first leader of an even key dies");
                                        }
                                        Ok(committed_value(i))
                                    })
                                }));
                            if let Ok(Ok(computed)) = outcome {
                                assert_eq!(computed.value, committed_value(i));
                                break;
                            }
                        }
                    }
                });
            }
        });

        for i in 0..KEYS {
            let expected = if i % 2 == 0 { 2 } else { 1 };
            assert_eq!(
                attempts[i as usize].load(Ordering::SeqCst),
                expected,
                "shards {shards}, key {i}: recovery must cost exactly one retry"
            );
        }
        let total = cache.stats();
        let evens = KEYS / 2;
        assert_eq!(total.flight_leaders, KEYS + evens, "shards {shards}");
        assert_eq!(total.misses, KEYS + evens, "shards {shards}");
        assert_eq!(total.inserts, KEYS, "only successful leaders insert");
        for i in 0..KEYS {
            assert_eq!(
                cache.get(&key(i)),
                Some(committed_value(i)),
                "shards {shards}: the cache survived its panicking leaders"
            );
        }
        for (at, shard) in cache.shard_stats().iter().enumerate() {
            assert!(
                shard.is_consistent(),
                "shards {shards}, shard {at}: {shard:?}"
            );
        }
        assert_eq!(cache.flight_waiters(), 0);
    }
}
