//! Model-based correctness suite for the sharded O(1)-LRU memo cache.
//!
//! The same random op trace (peeks, classify-style get→miss→insert cycles,
//! blind inserts, occasional clears — at tiny capacities, so evictions are
//! constant) is driven through [`ShardedLruCache`] and a naive single-map
//! reference model whose per-shard recency is a plain `Vec` with linear
//! scans: obviously-correct LRU semantics, none of the slab/intrusive-list
//! machinery under test. Every op must agree exactly — returned values,
//! keep-first winners, *which key* was evicted — and the final per-shard and
//! aggregate counters must be identical. With one shard the reference model
//! *is* the old engine's global LRU, so that configuration doubles as the
//! old-victim-order regression at property-test scale.
//!
//! Per house style (see tests/properties.rs) the generators are seeded
//! `StdRng`s, so every failure reproduces exactly from its case index.

use lcl_paths::classifier::cache::{ShardStats, ShardedLruCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;
const OPS: usize = 500;

/// One shard of the reference model: a recency-ordered vector (front = most
/// recently used) plus the same counters the real shard keeps.
struct ModelShard {
    capacity: usize,
    /// Front = most recently used; the eviction victim is the back.
    entries: Vec<(Vec<u8>, u64)>,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    peak_entries: usize,
}

impl ModelShard {
    fn new(capacity: usize) -> Self {
        ModelShard {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
            peak_entries: 0,
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<u64> {
        let at = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(at);
        let value = entry.1;
        self.entries.insert(0, entry);
        self.hits += 1;
        Some(value)
    }

    /// Returns `(winning value, fresh, evicted key)` with the same keep-first
    /// semantics as the real cache.
    fn insert(&mut self, key: Vec<u8>, value: u64) -> (u64, bool, Option<Vec<u8>>) {
        if let Some(at) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(at);
            let winner = entry.1;
            self.entries.insert(0, entry);
            return (winner, false, None);
        }
        let evicted = if self.entries.len() >= self.capacity {
            let (victim, _) = self.entries.pop().expect("full shard is non-empty");
            self.evictions += 1;
            Some(victim)
        } else {
            None
        };
        self.entries.insert(0, (key, value));
        self.inserts += 1;
        self.peak_entries = self.peak_entries.max(self.entries.len());
        (value, true, evicted)
    }

    fn clear(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            evictions: self.evictions,
            inserts: self.inserts,
            peak_entries: self.peak_entries,
        }
    }
}

/// The reference model: one naive shard per real shard, with the routing
/// delegated to the real cache's public `shard_of` (the placement function is
/// shared; the LRU/counter semantics are what differ and what we compare).
struct Model {
    shards: Vec<ModelShard>,
}

impl Model {
    fn new(cache: &ShardedLruCache<u64>, capacity: usize) -> Self {
        let n = cache.shards();
        let base = capacity / n;
        let extra = capacity % n;
        Model {
            shards: (0..n)
                .map(|i| ModelShard::new(base + usize::from(i < extra)))
                .collect(),
        }
    }
}

fn key(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

/// Drives one seeded trace through both implementations, asserting agreement
/// op by op and counter by counter.
fn run_trace(case: u64, capacity: usize, shards: usize) {
    let mut rng = StdRng::seed_from_u64(0xCAC4E + case);
    let cache = ShardedLruCache::new(capacity, shards);
    let mut model = Model::new(&cache, capacity);
    // Keys overlap heavily: a universe of ~3x capacity keeps both hits and
    // evictions frequent at these tiny capacities.
    let universe = (capacity as u64) * 3;
    let mut next_value = 0u64;

    for op in 0..OPS {
        let k = key(rng.gen_range(0..universe));
        let shard = cache.shard_of(&k);
        let ctx = format!("case {case}, op {op}, capacity {capacity}, shards {shards}");
        match rng.gen_range(0..100u32) {
            // Peek (Engine::cached): a hit touches and counts, a miss is free.
            0..=24 => {
                assert_eq!(cache.get(&k), model.shards[shard].get(&k), "{ctx}");
            }
            // Classify-shaped cycle: get, and on a miss record the miss and
            // insert the freshly "computed" value.
            25..=74 => {
                let got = cache.get(&k);
                assert_eq!(got, model.shards[shard].get(&k), "{ctx}");
                if got.is_none() {
                    cache.record_miss(&k);
                    model.shards[shard].misses += 1;
                    next_value += 1;
                    let real = cache.insert(k.clone(), next_value);
                    let (value, fresh, evicted) = model.shards[shard].insert(k, next_value);
                    assert_eq!(real.value, value, "{ctx}");
                    assert_eq!(real.fresh, fresh, "{ctx}");
                    assert_eq!(
                        real.evicted.as_deref(),
                        evicted.as_deref(),
                        "{ctx}: wrong eviction victim"
                    );
                }
            }
            // Blind insert, possibly racing a present key (keep-first).
            75..=97 => {
                next_value += 1;
                let real = cache.insert(k.clone(), next_value);
                let (value, fresh, evicted) = model.shards[shard].insert(k, next_value);
                assert_eq!(real.value, value, "{ctx}");
                assert_eq!(real.fresh, fresh, "{ctx}");
                assert_eq!(
                    real.evicted.as_deref(),
                    evicted.as_deref(),
                    "{ctx}: wrong eviction victim"
                );
            }
            // Rare clear: counters survive, dropped entries count as evicted.
            _ => {
                cache.clear();
                for shard in &mut model.shards {
                    shard.clear();
                }
            }
        }
    }

    // Identical outcomes imply identical counters — per shard and aggregate.
    let real = cache.shard_stats();
    let reference: Vec<ShardStats> = model.shards.iter().map(ModelShard::stats).collect();
    assert_eq!(real, reference, "case {case}: per-shard stats diverged");
    let total = cache.stats();
    assert_eq!(total.shards, cache.shards(), "case {case}");
    assert_eq!(
        (total.hits, total.misses, total.entries, total.evictions),
        (
            reference.iter().map(|s| s.hits).sum::<u64>(),
            reference.iter().map(|s| s.misses).sum::<u64>(),
            reference.iter().map(|s| s.entries).sum::<usize>(),
            reference.iter().map(|s| s.evictions).sum::<u64>(),
        ),
        "case {case}: aggregate stats diverged"
    );
    for (i, shard) in real.iter().enumerate() {
        assert!(
            shard.is_consistent(),
            "case {case}, shard {i}: entries + evictions != inserts: {shard:?}"
        );
    }
    assert!(total.entries <= capacity, "case {case}: capacity exceeded");
}

/// The acceptance matrix: shard counts 1, 2 and 8 at several tiny
/// capacities, each driven through `CASES` independently seeded traces.
#[test]
fn sharded_cache_agrees_with_naive_reference_model() {
    for &(capacity, shards) in &[(4, 1), (7, 1), (5, 2), (8, 2), (8, 8), (13, 8), (32, 8)] {
        for case in 0..CASES {
            run_trace(case, capacity, shards);
        }
    }
}

/// A requested shard count the capacity cannot sustain is clamped, and the
/// clamped cache still matches the model built on the effective count.
#[test]
fn clamped_shard_counts_still_match_the_model() {
    let cache = ShardedLruCache::<u64>::new(3, 8);
    assert_eq!(
        cache.shards(),
        2,
        "largest power of two with >= 1 slot each"
    );
    for case in 0..CASES {
        run_trace(case, 3, 8);
    }
}
