//! Model-based correctness suite for the sharded O(1)-LRU memo cache.
//!
//! The same random op trace (peeks, classify-style get→miss→insert cycles,
//! blind inserts, occasional clears — at tiny capacities, so evictions are
//! constant) is driven through [`ShardedLruCache`] and a naive single-map
//! reference model whose per-shard recency is a plain `Vec` with linear
//! scans: obviously-correct LRU semantics, none of the slab/intrusive-list
//! machinery under test. Every op must agree exactly — returned values,
//! keep-first winners, *which keys* were evicted — and the final per-shard
//! and aggregate counters must be identical. With one shard the reference
//! model *is* the old engine's global LRU, so that configuration doubles as
//! the old-victim-order regression at property-test scale.
//!
//! The suite runs the matrix twice: once **count-bounded** (the unit-weigher
//! default, where an insert evicts at most one victim) and once
//! **weight-bounded** (`ShardedLruCache::with_weigher` with a deterministic
//! non-unit weigher, where one heavy insert may evict several light entries
//! and an over-heavy entry parks alone). The model mirrors both with the
//! same evict-from-the-back loop.
//!
//! Per house style (see tests/properties.rs) the generators are seeded
//! `StdRng`s, so every failure reproduces exactly from its case index.

use lcl_paths::classifier::cache::{ShardStats, ShardedLruCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 24;
const OPS: usize = 500;

/// How the cache under test is bounded.
#[derive(Copy, Clone, Debug)]
enum Bound {
    /// `ShardedLruCache::new(capacity, _)`: every entry weighs 1.
    Count(usize),
    /// `ShardedLruCache::with_weigher(total_weight, _, weigh)`.
    Weight(u64),
}

/// The deterministic non-unit weigher both the real cache and the model use
/// in weighted traces: weights 1..=7 derived from the value.
fn weigh(value: &u64) -> u64 {
    *value % 7 + 1
}

/// One shard of the reference model: a recency-ordered vector (front = most
/// recently used) plus the same counters and budgets the real shard keeps.
struct ModelShard {
    capacity: usize,
    weight_capacity: u64,
    weigher: fn(&u64) -> u64,
    /// Front = most recently used; eviction victims pop off the back.
    /// Each entry remembers the weight it was priced at insert time.
    entries: Vec<(Vec<u8>, u64, u64)>,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
    peak_entries: usize,
    weight: u64,
    peak_weight: u64,
}

impl ModelShard {
    fn new(capacity: usize, weight_capacity: u64, weigher: fn(&u64) -> u64) -> Self {
        ModelShard {
            capacity,
            weight_capacity,
            weigher,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
            peak_entries: 0,
            weight: 0,
            peak_weight: 0,
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<u64> {
        let at = self.entries.iter().position(|(k, _, _)| k == key)?;
        let entry = self.entries.remove(at);
        let value = entry.1;
        self.entries.insert(0, entry);
        self.hits += 1;
        Some(value)
    }

    /// Returns `(winning value, fresh, evicted keys)` with the same
    /// keep-first and evict-until-it-fits semantics as the real cache.
    fn insert(&mut self, key: Vec<u8>, value: u64) -> (u64, bool, Vec<Vec<u8>>) {
        if let Some(at) = self.entries.iter().position(|(k, _, _)| *k == key) {
            let entry = self.entries.remove(at);
            let winner = entry.1;
            self.entries.insert(0, entry);
            return (winner, false, Vec::new());
        }
        let weight = (self.weigher)(&value);
        self.entries.insert(0, (key, value, weight));
        self.weight += weight;
        let mut evicted = Vec::new();
        while (self.entries.len() > self.capacity || self.weight > self.weight_capacity)
            && self.entries.len() > 1
        {
            let (victim, _, victim_weight) = self.entries.pop().expect("guarded non-empty");
            self.weight -= victim_weight;
            self.evictions += 1;
            evicted.push(victim);
        }
        self.inserts += 1;
        self.peak_entries = self.peak_entries.max(self.entries.len());
        self.peak_weight = self.peak_weight.max(self.weight);
        (value, true, evicted)
    }

    fn clear(&mut self) {
        self.evictions += self.entries.len() as u64;
        self.entries.clear();
        self.weight = 0;
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            evictions: self.evictions,
            inserts: self.inserts,
            peak_entries: self.peak_entries,
            weight: self.weight,
            peak_weight: self.peak_weight,
        }
    }
}

/// The reference model: one naive shard per real shard, with the routing
/// delegated to the real cache's public `shard_of` (the placement function is
/// shared; the LRU/counter semantics are what differ and what we compare).
/// Budgets are partitioned across shards exactly as the real cache does it:
/// base share plus one unit of remainder for the first shards.
struct Model {
    shards: Vec<ModelShard>,
}

impl Model {
    fn new(cache: &ShardedLruCache<u64>, bound: Bound) -> Self {
        let n = cache.shards();
        let shards = (0..n)
            .map(|i| match bound {
                Bound::Count(capacity) => {
                    let base = capacity / n;
                    let extra = capacity % n;
                    ModelShard::new(base + usize::from(i < extra), u64::MAX, |_| 1)
                }
                Bound::Weight(total) => {
                    let base = total / n as u64;
                    let extra = total % n as u64;
                    ModelShard::new(usize::MAX, base + u64::from((i as u64) < extra), weigh)
                }
            })
            .collect();
        Model { shards }
    }
}

fn key(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

/// Drives one seeded trace through both implementations, asserting agreement
/// op by op and counter by counter.
fn run_trace(case: u64, bound: Bound, shards: usize) {
    let mut rng = StdRng::seed_from_u64(0xCAC4E + case);
    let cache = match bound {
        Bound::Count(capacity) => ShardedLruCache::new(capacity, shards),
        Bound::Weight(total) => ShardedLruCache::with_weigher(total, shards, weigh),
    };
    let mut model = Model::new(&cache, bound);
    // Keys overlap heavily: a universe of ~3x the expected resident entry
    // count keeps both hits and evictions frequent at these tiny budgets
    // (weighted entries average weight 4, so ~total/4 fit).
    let universe = match bound {
        Bound::Count(capacity) => (capacity as u64) * 3,
        Bound::Weight(total) => (total * 3 / 4).max(4),
    };
    let mut next_value = 0u64;

    for op in 0..OPS {
        let k = key(rng.gen_range(0..universe));
        let shard = cache.shard_of(&k);
        let ctx = format!("case {case}, op {op}, {bound:?}, shards {shards}");
        match rng.gen_range(0..100u32) {
            // Peek (Engine::cached): a hit touches and counts, a miss is free.
            0..=24 => {
                assert_eq!(cache.get(&k), model.shards[shard].get(&k), "{ctx}");
            }
            // Classify-shaped cycle: get, and on a miss record the miss and
            // insert the freshly "computed" value.
            25..=74 => {
                let got = cache.get(&k);
                assert_eq!(got, model.shards[shard].get(&k), "{ctx}");
                if got.is_none() {
                    cache.record_miss(&k);
                    model.shards[shard].misses += 1;
                    next_value += 1;
                    let real = cache.insert(k.clone(), next_value);
                    let (value, fresh, evicted) = model.shards[shard].insert(k, next_value);
                    assert_eq!(real.value, value, "{ctx}");
                    assert_eq!(real.fresh, fresh, "{ctx}");
                    let real_evicted: Vec<Vec<u8>> =
                        real.evicted.iter().map(|k| k.to_vec()).collect();
                    assert_eq!(real_evicted, evicted, "{ctx}: wrong eviction victims");
                }
            }
            // Blind insert, possibly racing a present key (keep-first).
            75..=97 => {
                next_value += 1;
                let real = cache.insert(k.clone(), next_value);
                let (value, fresh, evicted) = model.shards[shard].insert(k, next_value);
                assert_eq!(real.value, value, "{ctx}");
                assert_eq!(real.fresh, fresh, "{ctx}");
                let real_evicted: Vec<Vec<u8>> = real.evicted.iter().map(|k| k.to_vec()).collect();
                assert_eq!(real_evicted, evicted, "{ctx}: wrong eviction victims");
            }
            // Rare clear: counters survive, dropped entries count as evicted.
            _ => {
                cache.clear();
                for shard in &mut model.shards {
                    shard.clear();
                }
            }
        }
    }

    // Identical outcomes imply identical counters — per shard and aggregate.
    let real = cache.shard_stats();
    let reference: Vec<ShardStats> = model.shards.iter().map(ModelShard::stats).collect();
    assert_eq!(real, reference, "case {case}: per-shard stats diverged");
    let total = cache.stats();
    assert_eq!(total.shards, cache.shards(), "case {case}");
    assert_eq!(
        (
            total.hits,
            total.misses,
            total.entries,
            total.evictions,
            total.weight
        ),
        (
            reference.iter().map(|s| s.hits).sum::<u64>(),
            reference.iter().map(|s| s.misses).sum::<u64>(),
            reference.iter().map(|s| s.entries).sum::<usize>(),
            reference.iter().map(|s| s.evictions).sum::<u64>(),
            reference.iter().map(|s| s.weight).sum::<u64>(),
        ),
        "case {case}: aggregate stats diverged"
    );
    for (i, shard) in real.iter().enumerate() {
        assert!(
            shard.is_consistent(),
            "case {case}, shard {i}: entries + evictions != inserts: {shard:?}"
        );
    }
    match bound {
        Bound::Count(capacity) => {
            assert!(total.entries <= capacity, "case {case}: capacity exceeded");
            assert_eq!(
                total.weight, total.entries as u64,
                "case {case}: unit weigher must price every entry at 1"
            );
        }
        Bound::Weight(_) => {
            // Each shard respects its weight budget, except for the
            // documented single-over-heavy-entry allowance.
            for (i, (shard, reference)) in real.iter().zip(&model.shards).enumerate() {
                assert!(
                    shard.weight <= reference.weight_capacity || shard.entries == 1,
                    "case {case}, shard {i}: over budget with multiple entries: {shard:?}"
                );
            }
        }
    }
}

/// The count-bounded acceptance matrix: shard counts 1, 2 and 8 at several
/// tiny capacities, each driven through `CASES` independently seeded traces.
#[test]
fn sharded_cache_agrees_with_naive_reference_model() {
    for &(capacity, shards) in &[(4, 1), (7, 1), (5, 2), (8, 2), (8, 8), (13, 8), (32, 8)] {
        for case in 0..CASES {
            run_trace(case, Bound::Count(capacity), shards);
        }
    }
}

/// The weight-bounded matrix: the same trace shapes against tiny weight
/// budgets, where single inserts evict several victims and over-heavy
/// entries park alone.
#[test]
fn weighted_cache_agrees_with_weighted_reference_model() {
    for &(total_weight, shards) in &[(6, 1), (11, 1), (16, 2), (29, 2), (40, 8), (64, 8)] {
        for case in 0..CASES {
            run_trace(case, Bound::Weight(total_weight), shards);
        }
    }
}

/// A requested shard count the capacity cannot sustain is clamped, and the
/// clamped cache still matches the model built on the effective count.
#[test]
fn clamped_shard_counts_still_match_the_model() {
    let cache = ShardedLruCache::<u64>::new(3, 8);
    assert_eq!(
        cache.shards(),
        2,
        "largest power of two with >= 1 slot each"
    );
    for case in 0..CASES {
        run_trace(case, Bound::Count(3), 8);
    }
    // Same clamp under a weight bound: budget 3 sustains at most 2 shards.
    let weighted = ShardedLruCache::<u64>::with_weigher(3, 8, weigh);
    assert_eq!(weighted.shards(), 2);
    for case in 0..CASES {
        run_trace(case, Bound::Weight(3), 8);
    }
}
