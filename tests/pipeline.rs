//! End-to-end integration tests: corpus → classifier → synthesized algorithm →
//! LOCAL simulator → verifier, across all complexity classes, plus the
//! path-to-cycle lift and the agreement between the two simulators.

use lcl_paths::classifier::{classify, Complexity};
use lcl_paths::problem::{lift_path_to_cycle, Instance, Topology};
use lcl_paths::problems::{self, corpus, KnownComplexity};
use lcl_paths::sim::{
    validate_algorithm, ActorSimulator, IdAssignment, LocalAlgorithm, Network, SyncSimulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cycle(n: usize, alpha: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..alpha as u16)).collect();
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0x5a5a);
    Network::new(
        Instance::from_indices(Topology::Cycle, &inputs),
        IdAssignment::RandomFromSpace { multiplier: 4 },
        &mut rng2,
    )
    .expect("network construction")
}

#[test]
fn corpus_verdicts_match_ground_truth() {
    for entry in corpus() {
        let verdict = classify(&entry.problem).expect("classification succeeds");
        let expected = match entry.expected {
            KnownComplexity::Unsolvable => Complexity::Unsolvable,
            KnownComplexity::Constant => Complexity::Constant,
            KnownComplexity::LogStar => Complexity::LogStar,
            KnownComplexity::Linear => Complexity::Linear,
        };
        assert_eq!(
            verdict.complexity(),
            expected,
            "problem {} ({})",
            entry.problem.name(),
            entry.why
        );
    }
}

#[test]
fn synthesized_algorithms_are_valid_for_every_solvable_corpus_problem() {
    for entry in corpus() {
        if entry.expected == KnownComplexity::Unsolvable {
            continue;
        }
        let verdict = classify(&entry.problem).expect("classification succeeds");
        let nets: Vec<Network> = [7usize, 24, 61, 130]
            .iter()
            .enumerate()
            .map(|(i, &n)| random_cycle(n, entry.problem.num_inputs(), 31 * i as u64 + 1))
            .collect();
        let outcome = validate_algorithm(&entry.problem, verdict.algorithm(), &nets)
            .expect("simulation succeeds");
        assert!(
            outcome.is_valid(),
            "problem {}: {:?}",
            entry.problem.name(),
            outcome
        );
    }
}

#[test]
fn simulators_agree_on_the_synthesized_logstar_algorithm() {
    let problem = problems::coloring(3);
    let verdict = classify(&problem).expect("classification succeeds");
    assert_eq!(verdict.complexity(), Complexity::LogStar);
    let net = random_cycle(140, 1, 9);
    let sync = SyncSimulator::new()
        .run(&net, verdict.algorithm())
        .expect("sync run");
    let actor = ActorSimulator::new()
        .run(&net, verdict.algorithm())
        .expect("actor run");
    assert_eq!(sync, actor, "the two LOCAL simulators must agree");
    assert!(problem.is_valid(net.instance(), &sync));
}

#[test]
fn path_problems_classify_through_the_endpoint_lift() {
    // 3-coloring of paths: the lifted cycle problem stays Θ(log* n).
    let lifted = lift_path_to_cycle(&problems::coloring(3)).expect("lift");
    let verdict = classify(&lifted).expect("classification succeeds");
    assert_eq!(verdict.complexity(), Complexity::LogStar);
    // Copy-input on paths stays O(1).
    let lifted = lift_path_to_cycle(&problems::copy_input()).expect("lift");
    let verdict = classify(&lifted).expect("classification succeeds");
    assert_eq!(verdict.complexity(), Complexity::Constant);
}

#[test]
fn logstar_radius_scales_like_log_star_not_linearly() {
    let verdict = classify(&problems::coloring(3)).expect("classification succeeds");
    let algo = verdict.algorithm();
    let r16k = algo.radius(1 << 14);
    let r1m = algo.radius(1 << 20);
    assert!(r1m < 2_000, "Θ(log* n) radius stays tiny, got {r1m}");
    assert!(r1m.saturating_sub(r16k) <= 200);
    let linear = classify(&problems::secret_broadcast()).expect("classification succeeds");
    assert_eq!(
        linear.algorithm().radius(1 << 20),
        1 << 20,
        "Θ(n) gathers everything"
    );
}

#[test]
fn constant_class_algorithm_handles_periodic_inputs_with_defects() {
    let problem = problems::copy_input();
    let verdict = classify(&problem).expect("classification succeeds");
    assert_eq!(verdict.complexity(), Complexity::Constant);
    let algo = verdict.algorithm();
    // Build a large cycle: (a b) periodic with two defects.
    let constant_radius = algo.radius(usize::MAX / 2);
    let n = 2 * constant_radius + 50;
    let mut inputs: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
    inputs[10] = 1 - inputs[10];
    inputs[n / 2] = 1 - inputs[n / 2];
    let mut rng = StdRng::seed_from_u64(4);
    let net = Network::new(
        Instance::from_indices(Topology::Cycle, &inputs),
        IdAssignment::RandomFromSpace { multiplier: 4 },
        &mut rng,
    )
    .expect("network");
    assert!(
        algo.radius(n) < n,
        "the constant algorithm must not gather everything"
    );
    let out = SyncSimulator::new().run(&net, algo).expect("run");
    assert!(problem.is_valid(net.instance(), &out));
}
