//! End-to-end tests for the `lcl-server` subsystem: the full corpus served
//! over real loopback TCP through the engine's persistent worker pool, the
//! stdio framing, request-id echoing, structured errors and graceful
//! shutdown.

use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{Instance, RequestEnvelope, ResponseEnvelope, Topology};
use lcl_paths::problems::{corpus, KnownComplexity};
use lcl_paths::Engine;
use lcl_server::{serve_stdio, Client, ClientError, Server, ServerHandle, Service};
use std::sync::Arc;

fn start_server(workers: usize) -> (ServerHandle, Arc<Service>) {
    let engine = Engine::builder().parallelism(workers).build();
    let service = Arc::new(Service::new(engine));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let handle = server.start().expect("start accept loop");
    (handle, service)
}

/// The acceptance bar of this PR: every corpus problem round-trips over TCP
/// through the persistent pool with verdict JSON byte-identical to the
/// in-process engine, at several pool widths.
#[test]
fn corpus_verdicts_over_tcp_are_byte_identical_to_in_process() {
    let reference = Engine::new();
    for workers in [1, 4] {
        let (handle, service) = start_server(workers);
        let mut client = Client::connect(handle.addr()).expect("connect");
        for entry in corpus() {
            let payload = JsonValue::object([("problem", entry.problem.to_spec().to_json())]);
            let reply = client
                .call("classify", payload)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
            let wire = reply
                .require("verdict")
                .expect("verdict field")
                .to_json_string();
            let local = reference
                .verdict(&entry.problem)
                .expect("in-process verdict")
                .to_json_string();
            assert_eq!(
                wire,
                local,
                "{}: wire and in-process verdict JSON differ at {workers} workers",
                entry.problem.name()
            );
        }
        // All classification ran as pool jobs, none on scoped threads.
        let pool = service.engine().pool_stats();
        assert_eq!(pool.workers, workers);
        assert!(
            pool.jobs_completed > 0,
            "dispatch must go through the pool: {pool:?}"
        );
        drop(client);
        handle.shutdown();
    }
}

/// The pipelining acceptance bar: every corpus classify frame is written
/// before a single reply is read, and the replies still arrive in request
/// order, echo the right ids, and are byte-identical to the in-process
/// verdict JSON.
#[test]
fn pipelined_burst_replies_in_order_and_byte_identical() {
    let reference = Engine::new();
    let (handle, service) = start_server(4);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let entries = corpus();

    // Flood the connection: N frames out, zero replies consumed so far.
    for (i, entry) in entries.iter().enumerate() {
        let payload = JsonValue::object([("problem", entry.problem.to_spec().to_json())]);
        let frame = RequestEnvelope::new(100 + i as i64, "classify", payload).to_json_string();
        client.send_frame(&frame).expect("send burst frame");
    }
    for (i, entry) in entries.iter().enumerate() {
        let reply = ResponseEnvelope::from_json_str(&client.recv_frame().expect("recv"))
            .expect("reply parses");
        assert_eq!(
            reply.id,
            Some(100 + i as i64),
            "replies must arrive in request order ({})",
            entry.problem.name()
        );
        let wire = reply
            .result
            .expect("classification succeeds")
            .require("verdict")
            .expect("verdict field")
            .to_json_string();
        let local = reference
            .verdict(&entry.problem)
            .expect("in-process verdict")
            .to_json_string();
        assert_eq!(
            wire,
            local,
            "{}: pipelined wire verdict differs from in-process",
            entry.problem.name()
        );
    }

    // The window fully drained and the gauges saw the burst.
    let stats = client.stats().expect("stats");
    let pipeline = stats
        .require("server")
        .unwrap()
        .require("pipeline")
        .expect("pipeline gauges in stats");
    // The stats request itself runs as a pipelined job, so the snapshot it
    // reports may count itself — but nothing else from the drained burst.
    assert!(
        pipeline.require("inflight").unwrap().as_int().unwrap() <= 1,
        "window must drain once all replies are read"
    );
    assert!(pipeline.require("peak_inflight").unwrap().as_int().unwrap() >= 1);
    // Once the stats reply has been received its own job has exited the
    // window too: the gauge must read exactly zero now.
    assert_eq!(service.metrics().pipelined_inflight(), 0);
    drop(client);
    handle.shutdown();
}

/// A tiny in-flight window (2) against a much larger burst: the reader-side
/// backpressure must delay frame consumption, never drop, reorder or
/// deadlock.
#[test]
fn small_inflight_window_backpressures_without_reordering() {
    let engine = Engine::builder().parallelism(2).build();
    let service = Arc::new(Service::new(engine));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind loopback")
        .max_inflight(2);
    let handle = server.start().expect("start accept loop");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let spec = lcl_paths::problems::coloring(3).to_spec();
    const BURST: i64 = 24;
    for id in 0..BURST {
        let payload = JsonValue::object([("problem", spec.to_json())]);
        let frame = RequestEnvelope::new(id, "classify", payload).to_json_string();
        client.send_frame(&frame).expect("send");
    }
    for id in 0..BURST {
        let reply = ResponseEnvelope::from_json_str(&client.recv_frame().expect("recv"))
            .expect("reply parses");
        assert_eq!(reply.id, Some(id), "strict request order under window 2");
        assert!(reply.is_ok());
    }
    // The window bound is exact: at no instant were more than 2 requests of
    // this connection dispatched-but-unwritten (the reader takes a slot
    // before dispatching, the writer frees it after writing).
    assert!(
        service.metrics().pipelined_peak() <= 2,
        "window 2 must cap concurrent dispatches at 2, saw peak {}",
        service.metrics().pipelined_peak()
    );
    drop(client);
    handle.shutdown();
}

/// `Client::classify_many_pipelined` agrees with the ground truth and with
/// the lock-step `classify_many` decoding.
#[test]
fn classify_many_pipelined_matches_ground_truth() {
    let (handle, _service) = start_server(4);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let entries = corpus();
    let specs: Vec<_> = entries.iter().map(|e| e.problem.to_spec()).collect();
    let pipelined = client
        .classify_many_pipelined(&specs, 8)
        .expect("pipelined sweep");
    let batched = client.classify_many(&specs).expect("batched sweep");
    assert_eq!(pipelined.len(), entries.len());
    for ((entry, pipelined), batched) in entries.iter().zip(&pipelined).zip(&batched) {
        let verdict = pipelined
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
        let expected = match entry.expected {
            KnownComplexity::Unsolvable => "unsolvable",
            KnownComplexity::Constant => "constant",
            KnownComplexity::LogStar => "log-star",
            KnownComplexity::Linear => "linear",
        };
        assert_eq!(
            verdict.complexity.wire_name(),
            expected,
            "{}",
            entry.problem.name()
        );
        assert_eq!(
            verdict,
            batched.as_ref().expect("batched verdict"),
            "{}: pipelined and batched verdicts must agree",
            entry.problem.name()
        );
    }
    drop(client);
    handle.shutdown();
}

/// One `classify_many` request over TCP agrees with the corpus ground truth
/// and with the typed client decoding.
#[test]
fn classify_many_over_tcp_matches_ground_truth() {
    let (handle, _service) = start_server(4);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let entries = corpus();
    let specs: Vec<_> = entries.iter().map(|e| e.problem.to_spec()).collect();
    let verdicts = client.classify_many(&specs).expect("batch round-trip");
    assert_eq!(verdicts.len(), entries.len());
    for (entry, verdict) in entries.iter().zip(verdicts) {
        let verdict = verdict.unwrap_or_else(|e| panic!("{}: {e}", entry.problem.name()));
        let expected = match entry.expected {
            KnownComplexity::Unsolvable => "unsolvable",
            KnownComplexity::Constant => "constant",
            KnownComplexity::LogStar => "log-star",
            KnownComplexity::Linear => "linear",
        };
        assert_eq!(
            verdict.complexity.wire_name(),
            expected,
            "{}",
            entry.problem.name()
        );
        assert_eq!(verdict.problem_hash, entry.problem.canonical_hash());
    }
    drop(client);
    handle.shutdown();
}

/// `solve` over TCP returns a labeling the problem verifier accepts.
#[test]
fn solve_over_tcp_returns_a_valid_labeling() {
    let (handle, _service) = start_server(2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let problem = lcl_paths::problems::coloring(3);
    let instance = Instance::from_indices(Topology::Cycle, &[0; 30]);
    let reply = client
        .solve(&problem.to_spec(), &instance)
        .expect("solve round-trip");
    assert_eq!(reply.labeling.len(), 30);
    assert!(reply.rounds > 0);
    assert!(
        problem.is_valid(&instance, &reply.labeling),
        "server-produced labeling must verify locally"
    );

    // Unsolvable-on-instance errors come back structured, not as hangups.
    let err = client
        .solve(
            &problem.to_spec(),
            &Instance::from_indices(Topology::Cycle, &[0]),
        )
        .expect_err("1-node cycle is not 3-colorable");
    match err {
        ClientError::Remote(reply) => {
            assert_eq!(reply.category, "classifier");
            assert!(
                reply.message.contains("admits no valid labeling"),
                "{}",
                reply.message
            );
        }
        other => panic!("expected a structured server error, got {other}"),
    }
    drop(client);
    handle.shutdown();
}

/// Request ids are echoed per connection; malformed frames produce structured
/// `protocol` errors and never kill the connection.
#[test]
fn ids_echo_and_errors_are_structured_over_tcp() {
    let (handle, _service) = start_server(1);
    let mut client = Client::connect(handle.addr()).expect("connect");

    client.send_frame("this is not json").expect("send");
    let reply = ResponseEnvelope::from_json_str(&client.recv_frame().expect("recv")).unwrap();
    assert_eq!(reply.id, None);
    assert_eq!(reply.result.unwrap_err().category, "protocol");

    client
        .send_frame(r#"{"v":99,"id":41,"kind":"health"}"#)
        .expect("send");
    let reply = ResponseEnvelope::from_json_str(&client.recv_frame().expect("recv")).unwrap();
    assert_eq!(reply.id, Some(41), "id salvaged from a bad envelope");
    assert!(!reply.is_ok());

    // The connection survived both; a well-formed request still works and
    // echoes its id.
    let health = client.health().expect("health after malformed frames");
    assert_eq!(health.require("status").unwrap().as_str().unwrap(), "ok");

    // stats reflects the traffic this connection produced.
    let stats = client.stats().expect("stats");
    let server = stats.require("server").unwrap();
    let kinds = server.require("kinds").unwrap();
    assert_eq!(
        kinds
            .require("invalid")
            .unwrap()
            .require("errors")
            .unwrap()
            .as_int()
            .unwrap(),
        2
    );
    drop(client);
    handle.shutdown();
}

/// The same dispatch runs over the stdio framing: frames in, frames out,
/// terminated by EOF.
#[test]
fn stdio_framing_serves_the_same_protocol() {
    let service = Service::new(Engine::builder().parallelism(1).build());
    let problem = lcl_paths::problems::coloring(3);
    let classify = RequestEnvelope::new(
        10,
        "classify",
        JsonValue::object([("problem", problem.to_spec().to_json())]),
    )
    .to_json_string();
    let input = format!("{classify}\n{{\"v\":1,\"id\":11,\"kind\":\"stats\"}}\n");
    let mut output = Vec::new();
    serve_stdio(&service, input.as_bytes(), &mut output).expect("stdio serve");

    let text = String::from_utf8(output).expect("utf-8 output");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    let classify_reply = ResponseEnvelope::from_json_str(lines[0]).unwrap();
    assert_eq!(classify_reply.id, Some(10));
    let wire = classify_reply
        .result
        .expect("classification ok")
        .require("verdict")
        .unwrap()
        .to_json_string();
    let local = Engine::new().verdict(&problem).unwrap().to_json_string();
    assert_eq!(wire, local, "stdio and in-process verdicts must agree");
    let stats_reply = ResponseEnvelope::from_json_str(lines[1]).unwrap();
    assert!(stats_reply.is_ok());
}

/// Graceful shutdown: the handle returns with connections open, and the
/// port stops accepting afterwards.
#[test]
fn shutdown_is_graceful_and_closes_the_listener() {
    let (handle, _service) = start_server(1);
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.health().expect("health");

    // Shut down while the client connection is still open and idle; this
    // must not hang.
    handle.shutdown();

    // The old connection is dead…
    assert!(
        client.health().is_err(),
        "connection must be closed by shutdown"
    );
    // …and the listener is gone (give the OS a moment to tear it down).
    let refused = (0..50).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(10));
        std::net::TcpStream::connect(addr).is_err()
    });
    assert!(refused, "listener must stop accepting after shutdown");
}
