//! Many-connection soak tests for both connection backends: ≥128
//! simultaneously open pipelined clients, byte-identical verdicts across
//! backends, per-id echo, connection-gauge consistency, the `--max-conns`
//! accept cap, and shutdown that no longer dials its own listen address.

use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{RequestEnvelope, ResponseEnvelope};
use lcl_paths::{problems, Engine};
use lcl_server::{Backend, Client, Server, ServerHandle, Service};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrently open pipelined clients per backend in the soak.
const CLIENTS: usize = 128;
/// Classify frames each client pipelines (distinct problems, so the cache
/// serves most of them after the first wave).
const FRAMES_PER_CLIENT: usize = 3;

fn backends() -> Vec<Backend> {
    [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

fn start_server(backend: Backend) -> (ServerHandle, Arc<Service>) {
    let service = Arc::new(Service::new(Engine::builder().parallelism(2).build()));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind loopback")
        .backend(backend)
        .start()
        .expect("start server");
    (handle, service)
}

/// Polls `condition` until it holds (or panics after `secs` seconds).
fn wait_until(what: &str, secs: u64, condition: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The problem each (client, frame) slot classifies; varied so the batch
/// covers several cache entries.
fn spec_for(frame: usize) -> lcl_paths::problem::ProblemSpec {
    problems::coloring(2 + frame % 3).to_spec()
}

fn request_id(client: usize, frame: usize) -> i64 {
    (client as i64) * 1000 + frame as i64
}

/// Runs the ≥128-client soak against one backend and returns every raw
/// reply line, sorted, for cross-backend comparison.
fn soak_backend(backend: Backend) -> Vec<String> {
    let (handle, service) = start_server(backend);
    let addr = handle.addr();

    // Open every client before any work starts, so all CLIENTS connections
    // are provably simultaneous.
    let clients: Vec<Client> = (0..CLIENTS)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("[{backend}] connect {i}: {e}")))
        .collect();
    wait_until(
        &format!("[{backend}] all {CLIENTS} connections open"),
        30,
        || service.metrics().open_connections() >= CLIENTS as u64,
    );
    assert!(
        service.metrics().peak_connections() >= CLIENTS as u64,
        "[{backend}] peak gauge must see the soak"
    );

    // The connection gauges are live on the wire too, not just in-process.
    let mut probe = Client::connect(addr).expect("connect stats probe");
    let stats = probe.stats().expect("stats over the wire");
    let connections = stats
        .require("server")
        .and_then(|s| s.require("connections"))
        .expect("server.connections in stats");
    assert!(
        connections.require("peak").unwrap().as_int().unwrap() >= CLIENTS as i64,
        "[{backend}] wire-visible peak"
    );
    assert!(
        connections.require("accepted").unwrap().as_int().unwrap() > CLIENTS as i64,
        "[{backend}] accepted counts the probe too"
    );
    drop(probe);

    // Every client floods its whole burst, then reads the replies: ids must
    // echo in request order and verdicts must be byte-identical to the
    // in-process engine.
    let reference = Engine::new();
    let expected: Vec<String> = (0..FRAMES_PER_CLIENT)
        .map(|frame| {
            reference
                .verdict(&spec_for(frame).to_problem().expect("corpus problem"))
                .expect("in-process verdict")
                .to_json_string()
        })
        .collect();
    let workers: Vec<std::thread::JoinHandle<Vec<String>>> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                for frame in 0..FRAMES_PER_CLIENT {
                    let payload = JsonValue::object([("problem", spec_for(frame).to_json())]);
                    let line = RequestEnvelope::new(request_id(i, frame), "classify", payload)
                        .to_json_string();
                    client.send_frame(&line).expect("send frame");
                }
                let mut replies = Vec::with_capacity(FRAMES_PER_CLIENT);
                for (frame, expected) in expected.iter().enumerate() {
                    let raw = client.recv_frame().expect("reply arrives");
                    let reply = ResponseEnvelope::from_json_str(&raw).expect("reply parses");
                    assert_eq!(
                        reply.id,
                        Some(request_id(i, frame)),
                        "client {i}: replies echo ids in request order"
                    );
                    let verdict = reply
                        .result
                        .expect("classification succeeds")
                        .require("verdict")
                        .expect("verdict field")
                        .to_json_string();
                    assert_eq!(
                        &verdict, expected,
                        "client {i} frame {frame}: wire verdict must be byte-identical"
                    );
                    replies.push(raw);
                }
                replies
            })
        })
        .collect();
    let mut all_replies: Vec<String> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("soak client thread"))
        .collect();

    // Every client has disconnected: the open gauge must settle back to 0
    // (connection teardown is asynchronous on both backends).
    wait_until(
        &format!("[{backend}] open connections back to 0"),
        30,
        || service.metrics().open_connections() == 0,
    );
    assert!(
        service.metrics().total_accepted() >= (CLIENTS + 1) as u64,
        "[{backend}] accepted all soak clients"
    );
    handle.shutdown();

    all_replies.sort();
    all_replies
}

/// The soak itself: ≥128 simultaneous pipelined clients against every
/// available backend, asserting byte-identical verdicts (in-process and
/// across backends), per-id echo and gauge consistency.
#[test]
fn soak_128_concurrent_pipelined_clients_per_backend() {
    let mut per_backend: Vec<(Backend, Vec<String>)> = Vec::new();
    for backend in backends() {
        per_backend.push((backend, soak_backend(backend)));
    }
    // The ids are deterministic per (client, frame) slot, so the full reply
    // frames — not just the verdict payloads — must agree byte-for-byte
    // between backends.
    if let [(first, first_replies), rest @ ..] = per_backend.as_slice() {
        for (other, other_replies) in rest {
            assert_eq!(
                first_replies, other_replies,
                "backends {first} and {other} must produce byte-identical reply sets"
            );
        }
    }
}

/// Connections in the single-cold-key stampede.
const STAMPEDE_CLIENTS: usize = 64;

/// One stampede attempt: 64 pipelined connections fire the same cold
/// classify at once. Returns the aggregate flight_joins reported by the
/// wire `stats` reply; everything that must hold on *every* attempt — one
/// computation total, byte-identical verdicts, one pool job per frame — is
/// hard-asserted inside.
fn stampede_once(backend: Backend) -> i64 {
    // As many pool workers as connections, so every frame's job can be
    // in-flight at once and 63 of them can park on the leader's flight
    // (waiters park on the leader's *inline* computation, never on queued
    // pool work, so a pool full of waiters cannot deadlock).
    let service = Arc::new(Service::new(
        Engine::builder().parallelism(STAMPEDE_CLIENTS).build(),
    ));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind loopback")
        .backend(backend)
        .start()
        .expect("start server");
    let addr = handle.addr();

    // A problem slow enough (~100ms cold) that every late requester reaches
    // the flight table while the leader is still computing.
    let spec = problems::coloring(14).to_spec();
    let expected = Engine::new()
        .verdict(&spec.to_problem().expect("corpus problem"))
        .expect("in-process verdict")
        .to_json_string();

    // Open all connections first, then release the requests as closely
    // together as threads allow.
    let clients: Vec<Client> = (0..STAMPEDE_CLIENTS)
        .map(|i| Client::connect(addr).unwrap_or_else(|e| panic!("[{backend}] connect {i}: {e}")))
        .collect();
    let barrier = Arc::new(std::sync::Barrier::new(STAMPEDE_CLIENTS));
    let workers: Vec<std::thread::JoinHandle<()>> = clients
        .into_iter()
        .enumerate()
        .map(|(i, mut client)| {
            let spec = spec.clone();
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let payload = JsonValue::object([("problem", spec.to_json())]);
                let line = RequestEnvelope::new(i as i64, "classify", payload).to_json_string();
                barrier.wait();
                client.send_frame(&line).expect("send classify");
                let raw = client.recv_frame().expect("reply arrives");
                let reply = ResponseEnvelope::from_json_str(&raw).expect("reply parses");
                assert_eq!(reply.id, Some(i as i64));
                let verdict = reply
                    .result
                    .expect("classification succeeds")
                    .require("verdict")
                    .expect("verdict field")
                    .to_json_string();
                assert_eq!(
                    verdict, expected,
                    "[{backend}] client {i}: stampede verdict must be byte-identical"
                );
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("stampede client thread");
    }

    // However the 64 threads interleaved, the cache performed exactly one
    // classification: one flight leader, one miss, one insert.
    let cache = service.engine().cache_stats();
    assert_eq!(
        (cache.misses, cache.flight_leaders, cache.inserts),
        (1, 1, 1),
        "[{backend}] 64-way cold miss must compute exactly once: {cache:?}"
    );
    assert_eq!(
        cache.hits + cache.misses,
        STAMPEDE_CLIENTS as u64,
        "[{backend}] every request is exactly one of hit/join/lead: {cache:?}"
    );
    // One pool job per pipelined frame — the stampede did not fan out 64
    // classifications onto the pool (the job bookkeeping settles just after
    // the replies are written).
    wait_until(&format!("[{backend}] 64 frame jobs complete"), 10, || {
        service.engine().pool_stats().jobs_completed == STAMPEDE_CLIENTS as u64
    });

    // The join count is also visible over the wire, in the stats reply.
    let mut probe = Client::connect(addr).expect("connect stats probe");
    let stats = probe.stats().expect("stats over the wire");
    let wire_cache = stats.require("cache").expect("cache block");
    assert_eq!(
        wire_cache
            .require("flight_leaders")
            .unwrap()
            .as_int()
            .unwrap(),
        1,
        "[{backend}] wire-visible leader count"
    );
    let joins = wire_cache
        .require("flight_joins")
        .unwrap()
        .as_int()
        .unwrap();
    drop(probe);
    handle.shutdown();
    joins
}

/// The single-key stampede: 64 pipelined connections issue the same cold
/// `classify` simultaneously on both backends. Exactly one classification
/// happens (hard-asserted every attempt); and in at least one attempt per
/// backend the other 63 requests are absorbed as flight *joins* — parked on
/// the leader's computation rather than served later from the warm cache.
/// The join/hit split depends on scheduling (a request that arrives after
/// the leader commits is a plain hit), so that half retries a few times on
/// a loaded machine.
#[test]
fn stampede_on_one_cold_key_classifies_once_with_63_joiners() {
    const ATTEMPTS: usize = 6;
    for backend in backends() {
        let mut best_joins = 0;
        for _ in 0..ATTEMPTS {
            best_joins = best_joins.max(stampede_once(backend));
            if best_joins >= (STAMPEDE_CLIENTS - 1) as i64 {
                break;
            }
        }
        assert!(
            best_joins >= (STAMPEDE_CLIENTS - 1) as i64,
            "[{backend}] stampede never fully joined: best {best_joins} of {}",
            STAMPEDE_CLIENTS - 1
        );
    }
}

/// `--max-conns`: connections past the cap are closed at accept
/// (reject-with-close), the gauge counts them, and capacity freed by a
/// closing client is reusable.
#[test]
fn max_conns_rejects_excess_connections_on_every_backend() {
    for backend in backends() {
        let service = Arc::new(Service::new(Engine::builder().parallelism(1).build()));
        let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
            .expect("bind loopback")
            .backend(backend)
            .max_conns(2)
            .start()
            .expect("start server");
        let addr = handle.addr();

        let mut first = Client::connect(addr).expect("first connect");
        let mut second = Client::connect(addr).expect("second connect");
        first
            .health()
            .unwrap_or_else(|e| panic!("[{backend}] first: {e}"));
        second
            .health()
            .unwrap_or_else(|e| panic!("[{backend}] second: {e}"));

        // The third connect succeeds at TCP level (listen backlog) but the
        // server closes it instead of serving: the first call must fail.
        let mut third = Client::connect(addr).expect("third connect");
        assert!(
            third.health().is_err(),
            "[{backend}] connection past --max-conns must be closed unserved"
        );
        wait_until(&format!("[{backend}] rejection counted"), 10, || {
            service.metrics().total_rejected() >= 1
        });
        assert_eq!(
            service.metrics().open_connections(),
            2,
            "[{backend}] rejected connection must not occupy a slot"
        );

        // Freeing a slot makes room again.
        drop(second);
        wait_until(&format!("[{backend}] slot freed"), 10, || {
            service.metrics().open_connections() == 1
        });
        let mut fourth = Client::connect(addr).expect("fourth connect");
        fourth
            .health()
            .unwrap_or_else(|e| panic!("[{backend}] freed capacity must serve: {e}"));

        drop(first);
        drop(third);
        drop(fourth);
        handle.shutdown();
    }
}

/// Shutdown is driven by the eventfd/poll wakeup, not by the old hack of
/// connecting to the listen address: after an immediate shutdown the accept
/// counter has never moved.
#[test]
fn shutdown_never_dials_its_own_listener() {
    for backend in backends() {
        let (handle, service) = start_server(backend);
        handle.shutdown();
        assert_eq!(
            service.metrics().total_accepted(),
            0,
            "[{backend}] shutdown must not fabricate a connection to wake accept"
        );
    }
}
