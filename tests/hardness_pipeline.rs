//! Integration tests of the Section 3 machinery: LBA → `Π_{M_B}` → solver →
//! verifier, β-normalization, the undirected lift and the tree encoding.

use lcl_paths::hardness::{
    beta_normalize, solve_pi_mb, undirected_lift, LabeledGraph, PiInput, PiMb, Secret,
};
use lcl_paths::lba::{machines, Outcome};
use lcl_paths::problem::{Instance, Labeling, Topology};
use lcl_paths::problems;

#[test]
fn pi_mb_complexity_tracks_machine_termination() {
    // For halting machines the good input exists and has length 1 + t(B+1);
    // for looping machines it does not — this is exactly the dichotomy behind
    // Theorem 5 (deciding between O(1) and Ω(n) decides LBA termination).
    for b in 4..7usize {
        let halting = PiMb::new(machines::unary_counter(), b);
        let steps = match machines::unary_counter().run(b, 1_000_000).unwrap() {
            Outcome::Halted { trace } => trace.len(),
            Outcome::Loops { .. } => panic!("unary counter halts"),
        };
        assert_eq!(halting.good_input_length(), Some(1 + steps * (b + 1)));
        let looping = PiMb::new(machines::always_loop(), b);
        assert_eq!(looping.good_input_length(), None);
    }
}

#[test]
fn solver_and_verifier_agree_on_many_corruptions() {
    let problem = PiMb::new(machines::binary_counter(), 4);
    let base = problem.good_input(Secret::B, 2).expect("halting machine");
    // Sweep single-position corruptions over the whole input.
    for pos in 0..base.len() {
        let mut corrupted = base.clone();
        corrupted[pos] = match corrupted[pos] {
            PiInput::Separator => PiInput::Empty,
            PiInput::Empty => PiInput::Separator,
            PiInput::Start(_) => PiInput::Separator,
            PiInput::Tape {
                content,
                state,
                head,
            } => PiInput::Tape {
                content,
                state,
                head: !head,
            },
        };
        let output = solve_pi_mb(&problem, &corrupted);
        assert!(
            problem.is_valid(&corrupted, &output),
            "corruption at position {pos} produced an invalid solver output"
        );
    }
}

#[test]
fn good_inputs_force_the_secret() {
    // §3.4: on a good input, the only accepted outputs for encoding nodes are
    // Start(φ); the solver indeed outputs the secret everywhere.
    let problem = PiMb::new(machines::immediate_halt(), 4);
    for secret in [Secret::A, Secret::B] {
        let input = problem.good_input(secret, 3).unwrap();
        let output = solve_pi_mb(&problem, &input);
        for (i, o) in output.iter().enumerate() {
            match input[i] {
                PiInput::Empty => assert_eq!(*o, lcl_paths::hardness::PiOutput::Empty),
                _ => assert_eq!(*o, lcl_paths::hardness::PiOutput::Start(secret), "node {i}"),
            }
        }
    }
}

#[test]
fn beta_normalization_preserves_validity_on_corpus_problem() {
    let problem = problems::copy_input();
    let normalized = beta_normalize(&problem).expect("normalization succeeds");
    assert_eq!(normalized.normalized.num_inputs(), 2);
    let instance = Instance::from_indices(Topology::Cycle, &[0, 1, 1, 0, 1, 0]);
    let labeling = Labeling::from_indices(&[0, 1, 1, 0, 1, 0]);
    assert!(problem.is_valid(&instance, &labeling));
    let encoded_instance = normalized.encode_instance(&instance);
    let encoded_labeling = normalized
        .encode_labeling(&instance, &labeling)
        .expect("encoding succeeds");
    assert!(normalized
        .normalized
        .is_valid(&encoded_instance, &encoded_labeling));
    assert_eq!(normalized.decode_labeling(&encoded_labeling), labeling);
    assert_eq!(encoded_instance.len(), instance.len() * normalized.gamma);
}

#[test]
fn undirected_lift_keeps_solutions() {
    let problem = problems::coloring(3);
    let lifted = undirected_lift(&problem).expect("lift succeeds");
    assert_eq!(lifted.radius(), 1);
    assert!(lifted.num_allowed_windows() > 0);
}

#[test]
fn tree_encoding_recovers_labels_of_a_labeled_cycle() {
    // §3.8: attach label trees to a 6-cycle with labels from an alphabet of
    // size 8 and recover them.
    let labels = vec![0usize, 7, 3, 5, 1, 6];
    let mut g = LabeledGraph::new(labels.clone());
    for i in 0..6 {
        g.add_edge(i, (i + 1) % 6);
    }
    let (gstar, roots) = g.attach_label_trees(8);
    assert!(gstar.max_degree() <= 3);
    let recovered = LabeledGraph::recover_labels(6, &gstar, &roots);
    let recovered: Vec<usize> = recovered
        .into_iter()
        .map(|r| r.expect("decodable"))
        .collect();
    assert_eq!(recovered, labels);
}
