//! End-to-end tests for the `solve_stream` protocol kind: chunked labelings
//! that concatenate to exactly the materialized [`Engine::solve`] output,
//! byte-identical frame streams across the reactor backend, the threads
//! backend and the stdio transport, in-order delivery when a stream is
//! pipelined with other requests, and structured rejection of workloads the
//! streaming path cannot serve (Θ(n) problems, out-of-alphabet inputs).

use std::sync::Arc;

use lcl_paths::problem::json::JsonValue;
use lcl_paths::problem::{
    Labeling, NormalizedLcl, RequestEnvelope, ResponseEnvelope, StreamInputs, StreamInstanceSpec,
    Topology,
};
use lcl_paths::{problems, Engine};
use lcl_server::{serve_stdio, Backend, Client, Server, ServerHandle, Service};

/// Small chunk ceiling (the `--max-chunk-bytes` clamp floor) so even short
/// test streams span several chunk frames: (1024 − 128) / 8 = 112 labels.
const CHUNK_BYTES: usize = 1024;

fn backends() -> Vec<Backend> {
    [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

fn service() -> Arc<Service> {
    Arc::new(
        Service::new(Engine::builder().parallelism(2).build()).with_max_chunk_bytes(CHUNK_BYTES),
    )
}

fn start(backend: Backend) -> ServerHandle {
    Server::bind(service(), "127.0.0.1:0")
        .expect("bind loopback")
        .backend(backend)
        .start()
        .expect("start server")
}

/// The streaming workloads: a `Θ(log* n)` problem on a cycle and an `O(1)`
/// problem on a path, both long enough to need several chunks.
fn workloads() -> Vec<(NormalizedLcl, StreamInstanceSpec)> {
    vec![
        (
            problems::coloring(3),
            StreamInstanceSpec {
                topology: Topology::Cycle,
                length: 240,
                inputs: StreamInputs::Uniform { label: 0 },
            },
        ),
        (
            problems::copy_input(),
            StreamInstanceSpec {
                topology: Topology::Path,
                length: 2_000,
                inputs: StreamInputs::Pattern {
                    pattern: vec![0, 1],
                },
            },
        ),
    ]
}

/// Chunks arrive in order, concatenate to exactly the labeling a
/// materialized [`Engine::solve`] produces, and the result is identical on
/// every backend.
#[test]
fn streamed_chunks_concatenate_to_the_materialized_solve() {
    let reference = Engine::builder().parallelism(1).build();
    let mut per_backend: Vec<(Backend, Vec<Vec<u16>>)> = Vec::new();

    for backend in backends() {
        let handle = start(backend);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut labelings = Vec::new();

        for (problem, spec) in workloads() {
            let mut labels: Vec<u16> = Vec::new();
            let mut chunks = 0u64;
            let summary = client
                .solve_stream(&problem.to_spec(), &spec, |offset, outputs| {
                    assert_eq!(
                        offset,
                        labels.len() as u64,
                        "[{backend}] {}: chunk offsets must be contiguous",
                        problem.name()
                    );
                    labels.extend_from_slice(outputs);
                    chunks += 1;
                })
                .unwrap_or_else(|e| panic!("[{backend}] {}: {e}", problem.name()));

            assert_eq!(summary.nodes, spec.length, "[{backend}] node count");
            assert_eq!(summary.chunks, chunks, "[{backend}] chunk count");
            assert!(
                chunks >= 2,
                "[{backend}] {}: the workload must span several chunks, got {chunks}",
                problem.name()
            );

            // The stream is not merely *a* valid labeling: it is exactly the
            // labeling the materialized solve produces.
            let instance = spec.materialize(problem.num_inputs());
            let solved = reference
                .solve(&problem, &instance)
                .expect("materialized solve");
            let expected: Vec<u16> = solved.labeling().outputs().iter().map(|o| o.0).collect();
            assert_eq!(
                labels,
                expected,
                "[{backend}] {}: stream diverged from the materialized solve",
                problem.name()
            );
            assert_eq!(summary.rounds, solved.rounds(), "[{backend}] round count");
            assert_eq!(summary.complexity, solved.complexity(), "[{backend}] class");
            assert!(
                problem.is_valid(&instance, &Labeling::from_indices(&labels)),
                "[{backend}] {}: streamed labeling must verify",
                problem.name()
            );
            labelings.push(labels);
        }

        drop(client);
        handle.shutdown();
        per_backend.push((backend, labelings));
    }

    if let [(first, first_labels), rest @ ..] = per_backend.as_slice() {
        for (other, other_labels) in rest {
            assert_eq!(
                first_labels, other_labels,
                "backends {first} and {other} must stream identical labelings"
            );
        }
    }
}

/// The request line every transport replays in the byte-identity test.
fn stream_request_line(id: i64) -> String {
    let spec = StreamInstanceSpec {
        topology: Topology::Cycle,
        length: 240,
        inputs: StreamInputs::Uniform { label: 0 },
    };
    let payload = JsonValue::object([
        ("problem", problems::coloring(3).to_spec().to_json()),
        ("instance", spec.to_json()),
    ]);
    RequestEnvelope::new(id, "solve_stream", payload).into_json_string()
}

/// Reads raw reply frames for one stream until the terminal summary frame
/// (the one carrying `done`), returning every line verbatim.
fn collect_stream_frames(client: &mut Client, id: i64) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let line = client.recv_frame().expect("stream frame");
        let response = ResponseEnvelope::from_json_str(&line).expect("frame parses");
        assert_eq!(response.id, Some(id), "every frame echoes the request id");
        let terminal = response
            .result
            .as_ref()
            .expect("stream frames are ok envelopes")
            .get("done")
            .is_some();
        lines.push(line);
        if terminal {
            return lines;
        }
    }
}

/// The full reply stream — every chunk frame and the terminal summary — is
/// byte-identical across the reactor backend, the threads backend, and the
/// stdio transport.
#[test]
fn stream_frames_are_byte_identical_across_backends_and_stdio() {
    let request = stream_request_line(9);
    let mut transcripts: Vec<(String, Vec<String>)> = Vec::new();

    for backend in backends() {
        let handle = start(backend);
        let mut client = Client::connect(handle.addr()).expect("connect");
        client.send_frame(&request).expect("send");
        transcripts.push((backend.to_string(), collect_stream_frames(&mut client, 9)));
        drop(client);
        handle.shutdown();
    }

    let mut output = Vec::new();
    serve_stdio(&service(), format!("{request}\n").as_bytes(), &mut output).expect("stdio");
    let stdio_lines: Vec<String> = std::str::from_utf8(&output)
        .expect("utf8 output")
        .lines()
        .map(str::to_string)
        .collect();
    transcripts.push(("stdio".to_string(), stdio_lines));

    if let [(first, first_lines), rest @ ..] = transcripts.as_slice() {
        assert!(
            first_lines.len() > 2,
            "stream must produce chunk frames before the summary"
        );
        for (other, other_lines) in rest {
            assert_eq!(
                first_lines, other_lines,
                "transports {first} and {other} must produce byte-identical streams"
            );
        }
    }
}

/// A stream pipelined ahead of other requests holds the reply order: every
/// chunk frame and the stream's summary drain before the next reply.
#[test]
fn pipelined_requests_behind_a_stream_reply_in_order() {
    for backend in backends() {
        let handle = start(backend);
        let mut client = Client::connect(handle.addr()).expect("connect");

        let spec = StreamInstanceSpec {
            topology: Topology::Path,
            length: 500,
            inputs: StreamInputs::Pattern {
                pattern: vec![0, 1],
            },
        };
        let payload = JsonValue::object([
            ("problem", problems::copy_input().to_spec().to_json()),
            ("instance", spec.to_json()),
        ]);
        let stream = RequestEnvelope::new(1, "solve_stream", payload).into_json_string();
        let health = r#"{"v":1,"id":2,"kind":"health"}"#;
        client.send_frame(&stream).expect("send stream");
        client.send_frame(health).expect("send health");

        let frames = collect_stream_frames(&mut client, 1);
        assert!(
            frames.len() >= 3,
            "[{backend}] 500 nodes at 112 labels/chunk must span several frames"
        );
        let after = client.recv_frame().expect("health reply");
        let response = ResponseEnvelope::from_json_str(&after).expect("reply parses");
        assert_eq!(
            response.id,
            Some(2),
            "[{backend}] the pipelined health reply must follow the whole stream"
        );

        drop(client);
        handle.shutdown();
    }
}

/// Workloads the streaming path cannot serve fail with one structured error
/// envelope and no chunk frames: a `Θ(n)` problem (streaming would need the
/// whole instance) and inputs outside the problem's alphabet.
#[test]
fn unstreamable_workloads_fail_with_a_structured_error() {
    let rejected = [
        (
            "linear problems cannot stream",
            problems::secret_broadcast(),
            StreamInstanceSpec {
                topology: Topology::Cycle,
                length: 100,
                inputs: StreamInputs::Uniform { label: 0 },
            },
        ),
        (
            "inputs must fit the alphabet",
            problems::coloring(3),
            StreamInstanceSpec {
                topology: Topology::Cycle,
                length: 100,
                inputs: StreamInputs::Uniform { label: 7 },
            },
        ),
    ];
    for (what, problem, spec) in rejected {
        let payload = JsonValue::object([
            ("problem", problem.to_spec().to_json()),
            ("instance", spec.to_json()),
        ]);
        let request = RequestEnvelope::new(5, "solve_stream", payload).into_json_string();
        let mut output = Vec::new();
        serve_stdio(&service(), format!("{request}\n").as_bytes(), &mut output).expect("stdio");
        let lines: Vec<&str> = std::str::from_utf8(&output)
            .expect("utf8")
            .lines()
            .collect();
        assert_eq!(lines.len(), 1, "{what}: no chunks before the error");
        let response = ResponseEnvelope::from_json_str(lines[0]).expect("error parses");
        assert_eq!(response.id, Some(5));
        assert!(
            response.result.is_err(),
            "{what}: must be an error envelope"
        );
    }
}
