//! Concurrency stress for the single-flight, fast-lane memo cache.
//!
//! Where tests/cache_model.rs proves the *semantics* against a reference
//! model, this suite hammers the real [`ShardedLruCache`] with a hot-key
//! skewed multi-threaded workload and asserts the concurrency invariants
//! that only show up under real interleavings:
//!
//! * **compute-once, globally**: every closure execution is tallied in a
//!   per-key `AtomicU64`; at the end the executions must equal the cache's
//!   `inserts` exactly — one computation per key per eviction generation,
//!   never a duplicate (N threads racing one cold key do one computation);
//! * **live snapshot consistency**: an observer thread snapshots per-shard
//!   stats *while* the workers run, asserting `entries + evictions ==
//!   inserts` and the `hits == fast + locked + joined` accounting on every
//!   mid-run snapshot (the counters live inside the shard's critical
//!   sections, so no torn snapshot is ever visible);
//! * **panic recovery**: a leader that dies on a hot key wakes its pile of
//!   waiters into electing exactly one successor — nobody deadlocks, no
//!   lock stays poisoned, and the recovery costs exactly one extra
//!   computation.
//!
//! The per-thread op count is capped by the `LCL_CACHE_RACE_OPS` env var so
//! CI can dial the suite to its wall-clock budget (the release-mode stress
//! step raises it; plain `cargo test -q` stays cheap).

use lcl_paths::classifier::cache::ShardedLruCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;
/// The skewed key universe: small enough that the low keys are genuinely
/// hot, large enough that the capacity below keeps evicting the tail.
const UNIVERSE: u64 = 48;

/// Per-thread operations; override with `LCL_CACHE_RACE_OPS`.
fn ops_per_thread() -> usize {
    std::env::var("LCL_CACHE_RACE_OPS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(3_000)
}

/// A zipf-ish skew from the seeded shim: the minimum of three uniform draws
/// cubes the density toward low indices, so key 0 is drawn roughly 60x as
/// often as the median key — a hot head with a long cold tail, which is
/// exactly the shape that exercises both the fast lane (hot hits) and
/// single-flight (cold tail keys being re-led after eviction).
fn skewed_key(rng: &mut StdRng) -> u64 {
    let a = rng.gen_range(0..UNIVERSE);
    let b = rng.gen_range(0..UNIVERSE);
    let c = rng.gen_range(0..UNIVERSE);
    a.min(b).min(c)
}

fn key(i: u64) -> Vec<u8> {
    i.to_le_bytes().to_vec()
}

/// The one legitimate value for a key; every generation recomputes it, so a
/// joiner can always assert what it must observe.
fn committed_value(i: u64) -> u64 {
    i * 1_000 + 1
}

/// The headline stress: 8 threads × skewed get-or-compute against a cache
/// small enough to keep evicting, with a live observer. The per-key tallies
/// summed must equal `inserts` — each eviction generation of each key was
/// computed exactly once, so no concurrent miss ever duplicated work.
#[test]
fn skewed_race_computes_each_generation_exactly_once() {
    let ops = ops_per_thread();
    // Capacity 32 over a 48-key universe: the hot head stays resident, the
    // tail churns through eviction generations.
    let cache = Arc::new(ShardedLruCache::<u64>::new(32, 8));
    let computed: Arc<Vec<AtomicU64>> =
        Arc::new((0..UNIVERSE).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(Barrier::new(THREADS));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // The live observer: every mid-run snapshot must satisfy the
        // bookkeeping invariants — they hold inside the critical sections,
        // not just at quiescence.
        {
            let cache = Arc::clone(&cache);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut snapshots = 0u64;
                while !done.load(Ordering::SeqCst) {
                    for (i, shard) in cache.shard_stats().iter().enumerate() {
                        assert!(
                            shard.is_consistent(),
                            "mid-run shard {i} snapshot violates the invariants: {shard:?}"
                        );
                    }
                    let total = cache.stats();
                    assert!(total.entries <= 32, "capacity exceeded mid-run: {total:?}");
                    assert_eq!(
                        total.hits,
                        total.fast_hits + total.locked_hits + total.flight_joins,
                        "mid-run hit accounting tore: {total:?}"
                    );
                    snapshots += 1;
                    std::thread::yield_now();
                }
                assert!(snapshots > 0, "the observer never observed");
            });
        }
        for thread in 0..THREADS {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5_EED0 + thread as u64);
                barrier.wait();
                for _ in 0..ops {
                    let i = skewed_key(&mut rng);
                    let result = cache
                        .get_or_compute::<()>(&key(i), || {
                            computed[i as usize].fetch_add(1, Ordering::SeqCst);
                            Ok(committed_value(i))
                        })
                        .expect("compute never fails in this trace");
                    assert_eq!(result.value, committed_value(i), "stale or foreign value");
                }
                if barrier.wait().is_leader() {
                    done.store(true, Ordering::SeqCst);
                }
            });
        }
    });

    let total = cache.stats();
    let executions: u64 = computed.iter().map(|c| c.load(Ordering::SeqCst)).sum();
    // The compute-once proof: every closure run corresponds to exactly one
    // committed generation. Duplicated cold-miss work would make
    // executions > inserts; a lost insert would make it smaller.
    assert_eq!(
        executions, total.inserts,
        "computations != committed generations: {total:?}"
    );
    assert_eq!(
        total.flight_leaders, executions,
        "every computation was led through a flight"
    );
    assert_eq!(
        total.misses, total.flight_leaders,
        "pure get_or_compute traffic"
    );
    assert_eq!(
        total.hits + total.misses,
        (THREADS * ops) as u64,
        "every call is exactly one of fast/locked/joined/led: {total:?}"
    );
    // The hot head was hammered from 8 threads for the whole run; the
    // fast lane plus recency-holding inserts make it overwhelmingly likely
    // some hit skipped its touch — but that is scheduling-dependent, so
    // only the *accounting* is asserted here (the deterministic fast-hit
    // proof lives in the cache_scaling bench experiment).
    for (i, shard) in cache.shard_stats().iter().enumerate() {
        assert!(shard.is_consistent(), "final shard {i}: {shard:?}");
    }
    assert_eq!(
        cache.flight_waiters(),
        0,
        "no parked thread outlives the run"
    );
}

/// Panic recovery on a single hot key with every thread piled onto it: the
/// first leader dies, one successor recomputes, everyone else joins or
/// hits. Exactly two executions total, and the cache (and all its locks)
/// stay fully usable afterwards.
#[test]
fn a_dying_leader_on_a_hot_key_wakes_everyone_into_recovery() {
    let cache = Arc::new(ShardedLruCache::<u64>::new(8, 1));
    let attempts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let hot = key(7);

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let cache = Arc::clone(&cache);
            let attempts = Arc::clone(&attempts);
            let barrier = Arc::clone(&barrier);
            let hot = hot.clone();
            scope.spawn(move || {
                barrier.wait();
                loop {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        cache.get_or_compute::<()>(&hot, || {
                            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                                // Stall so the other threads pile up as
                                // waiters before the panic wakes them all.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                                panic!("first leader dies with waiters parked");
                            }
                            Ok(77)
                        })
                    }));
                    if let Ok(Ok(computed)) = outcome {
                        assert_eq!(computed.value, 77, "joiners observe the recovery value");
                        break;
                    }
                }
            });
        }
    });

    assert_eq!(
        attempts.load(Ordering::SeqCst),
        2,
        "recovery costs exactly one extra computation"
    );
    let total = cache.stats();
    assert_eq!(total.flight_leaders, 2, "the dead leader and its successor");
    assert_eq!(total.misses, 2);
    assert_eq!(total.inserts, 1, "only the successful leader inserted");
    // Not poisoned: the plain read path, the insert path and the stats path
    // all still work.
    assert_eq!(cache.get(&hot), Some(77));
    assert!(cache.insert(key(8), 88).fresh);
    for shard in cache.shard_stats() {
        assert!(shard.is_consistent(), "{shard:?}");
    }
    assert_eq!(cache.flight_waiters(), 0);
}
