//! Property-based tests (proptest) on the core invariants: the transfer
//! relation is a semigroup morphism, brute-force solutions verify, type-equal
//! words are interchangeable for gap completion, and the Π_{M_B} solver is
//! total and sound under random corruptions.

use lcl_paths::hardness::{solve_pi_mb, PiInput, PiMb, Secret};
use lcl_paths::lba::{machines, StateId, TapeSymbol};
use lcl_paths::problem::{InLabel, Instance, NormalizedLcl, OutLabel, Topology};
use lcl_paths::problems;
use lcl_paths::semigroup::{
    is_primitive, primitive_root, smallest_period, TransferSystem, TypeSemigroup,
};
use proptest::prelude::*;

/// A small random normalized problem over fixed alphabet sizes.
fn arb_problem(alpha: usize, beta: usize) -> impl Strategy<Value = NormalizedLcl> {
    let node_bits = proptest::collection::vec(any::<bool>(), alpha * beta);
    let edge_bits = proptest::collection::vec(any::<bool>(), beta * beta);
    (node_bits, edge_bits).prop_map(move |(node, edge)| {
        let mut b = NormalizedLcl::builder("random");
        b.input_labels(&(0..alpha).map(|i| format!("i{i}")).collect::<Vec<_>>());
        b.output_labels(&(0..beta).map(|i| format!("o{i}")).collect::<Vec<_>>());
        for a in 0..alpha {
            // Guarantee at least one allowed output per input so instances are
            // not vacuously unsolvable at the node level.
            b.allow_node_idx(a as u16, (a % beta) as u16);
            for o in 0..beta {
                if node[a * beta + o] {
                    b.allow_node_idx(a as u16, o as u16);
                }
            }
        }
        b.allow_edge_idx(0, 0);
        for p in 0..beta {
            for q in 0..beta {
                if edge[p * beta + q] {
                    b.allow_edge_idx(p as u16, q as u16);
                }
            }
        }
        b.build().expect("random problem is well-formed")
    })
}

fn word(max_len: usize, alpha: usize) -> impl Strategy<Value = Vec<InLabel>> {
    proptest::collection::vec(0..alpha as u16, 1..=max_len)
        .prop_map(|v| v.into_iter().map(InLabel).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `R(uv) = R(u) · E · R(v)` for random problems and random words.
    #[test]
    fn transfer_relation_is_a_morphism(
        problem in arb_problem(2, 3),
        u in word(6, 2),
        v in word(6, 2),
    ) {
        let ts = TransferSystem::new(&problem);
        let mut uv = u.clone();
        uv.extend_from_slice(&v);
        let direct = ts.relation_of_word(&uv).unwrap();
        let joined = ts
            .join(&ts.relation_of_word(&u).unwrap(), &ts.relation_of_word(&v).unwrap())
            .unwrap();
        prop_assert_eq!(direct, joined);
    }

    /// Whatever the brute-force solver returns is accepted by the verifier,
    /// and when it returns nothing the transfer-relation solvability check
    /// agrees.
    #[test]
    fn brute_force_solutions_verify(
        problem in arb_problem(2, 3),
        inputs in proptest::collection::vec(0..2u16, 3..20),
        cycle in any::<bool>(),
    ) {
        let topology = if cycle { Topology::Cycle } else { Topology::Path };
        let instance = Instance::from_indices(topology, &inputs);
        let ts = TransferSystem::new(&problem);
        match problem.solve_brute_force(&instance) {
            Some(labeling) => {
                prop_assert!(problem.is_valid(&instance, &labeling));
                prop_assert!(ts.instance_solvable(&instance).unwrap());
            }
            None => prop_assert!(!ts.instance_solvable(&instance).unwrap()),
        }
    }

    /// Two words with the same type are interchangeable as gaps: for every
    /// pair of boundary labels, the gap is completable through one word iff it
    /// is completable through the other (the computational content of the
    /// paper's Lemma 11).
    #[test]
    fn type_equal_words_complete_the_same_boundaries(
        problem in arb_problem(2, 3),
        u in word(8, 2),
        v in word(8, 2),
    ) {
        let ts = TransferSystem::new(&problem);
        let sg = TypeSemigroup::compute(&ts, 100_000).unwrap();
        prop_assume!(sg.type_of_word(&u).unwrap() == sg.type_of_word(&v).unwrap());
        let cu = ts.connection_of_word(&u).unwrap();
        let cv = ts.connection_of_word(&v).unwrap();
        prop_assert_eq!(cu, cv);
    }

    /// Period / primitivity invariants used by the O(1) partition.
    #[test]
    fn periodicity_invariants(w in word(12, 3)) {
        let p = smallest_period(&w);
        prop_assert!(p >= 1 && p <= w.len());
        for i in 0..w.len() - p {
            prop_assert_eq!(w[i], w[i + p]);
        }
        let root = primitive_root(&w);
        prop_assert!(is_primitive(root));
        prop_assert_eq!(w.len() % root.len(), 0usize);
    }

    /// The §3.3 solver always returns a constraint-satisfying output, for
    /// arbitrary (not just good) Π_{M_B} inputs.
    #[test]
    fn pi_mb_solver_is_total_and_sound(
        seed_positions in proptest::collection::vec((0usize..40, 0usize..6), 0..5),
    ) {
        let problem = PiMb::new(machines::unary_counter(), 4);
        let mut inputs = problem.good_input(Secret::A, 4).expect("halting machine");
        for (pos, kind) in seed_positions {
            let pos = pos % inputs.len();
            inputs[pos] = match kind {
                0 => PiInput::Separator,
                1 => PiInput::Empty,
                2 => PiInput::Start(Secret::B),
                3 => PiInput::Tape { content: TapeSymbol::One, state: StateId(0), head: false },
                4 => PiInput::Tape { content: TapeSymbol::Zero, state: StateId(1), head: true },
                _ => PiInput::Tape { content: TapeSymbol::RightEnd, state: StateId(2), head: false },
            };
        }
        let output = solve_pi_mb(&problem, &inputs);
        prop_assert!(problem.is_valid(&inputs, &output));
    }

    /// Merging output labels never makes a solvable instance unsolvable
    /// (monotonicity used throughout the classifier's reasoning).
    #[test]
    fn merging_outputs_preserves_solvability(
        inputs in proptest::collection::vec(0..1u16, 3..12),
    ) {
        let strict = problems::coloring(3);
        let merged = lcl_paths::problem::relabel_outputs(&strict, &[0, 1, 1], &["1", "2"]).unwrap();
        let instance = Instance::from_indices(Topology::Cycle, &inputs);
        if let Some(labeling) = strict.solve_brute_force(&instance) {
            // Transport the labeling through the merge and check validity.
            let transported: Vec<u16> = labeling
                .outputs()
                .iter()
                .map(|o| if o.index() == 0 { 0 } else { 1 })
                .collect();
            let transported = lcl_paths::problem::Labeling::from_indices(&transported);
            prop_assert!(merged.is_valid(&instance, &transported));
        }
    }
}

#[test]
fn out_label_ordering_is_consistent() {
    // Small non-proptest sanity check used by the property tests above.
    assert!(OutLabel(0) < OutLabel(1));
    assert_eq!(InLabel(2).index(), 2);
}
