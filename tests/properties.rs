//! Randomized property tests on the core invariants: the transfer relation is
//! a semigroup morphism, brute-force solutions verify, type-equal words are
//! interchangeable for gap completion, and the Π_{M_B} solver is total and
//! sound under random corruptions.
//!
//! Originally written with proptest; rewritten onto deterministic seeded
//! generators because the offline build environment cannot fetch proptest.
//! Each property runs a fixed number of independently seeded cases, so
//! failures are exactly reproducible from the case index.

use lcl_paths::hardness::{solve_pi_mb, PiInput, PiMb, Secret};
use lcl_paths::lba::{machines, StateId, TapeSymbol};
use lcl_paths::problem::{InLabel, Instance, NormalizedLcl, OutLabel, Topology};
use lcl_paths::problems;
use lcl_paths::semigroup::{
    is_primitive, primitive_root, smallest_period, TransferSystem, TypeSemigroup,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// A small random normalized problem over fixed alphabet sizes, with at least
/// one allowed output per input and the `(0, 0)` edge pair, so instances are
/// not vacuously unsolvable at the node level.
fn random_problem(rng: &mut StdRng, alpha: usize, beta: usize) -> NormalizedLcl {
    let mut b = NormalizedLcl::builder("random");
    b.input_labels(&(0..alpha).map(|i| format!("i{i}")).collect::<Vec<_>>());
    b.output_labels(&(0..beta).map(|i| format!("o{i}")).collect::<Vec<_>>());
    for a in 0..alpha {
        b.allow_node_idx(a as u16, (a % beta) as u16);
        for o in 0..beta {
            if rng.gen_range(0..2u16) == 1 {
                b.allow_node_idx(a as u16, o as u16);
            }
        }
    }
    b.allow_edge_idx(0, 0);
    for p in 0..beta {
        for q in 0..beta {
            if rng.gen_range(0..2u16) == 1 {
                b.allow_edge_idx(p as u16, q as u16);
            }
        }
    }
    b.build().expect("random problem is well-formed")
}

fn random_word(rng: &mut StdRng, max_len: usize, alpha: usize) -> Vec<InLabel> {
    let len = rng.gen_range(1..max_len + 1);
    (0..len)
        .map(|_| InLabel(rng.gen_range(0..alpha as u16)))
        .collect()
}

/// `R(uv) = R(u) · E · R(v)` for random problems and random words.
#[test]
fn transfer_relation_is_a_morphism() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let problem = random_problem(&mut rng, 2, 3);
        let u = random_word(&mut rng, 6, 2);
        let v = random_word(&mut rng, 6, 2);
        let ts = TransferSystem::new(&problem);
        let mut uv = u.clone();
        uv.extend_from_slice(&v);
        let direct = ts.relation_of_word(&uv).unwrap();
        let joined = ts
            .join(
                &ts.relation_of_word(&u).unwrap(),
                &ts.relation_of_word(&v).unwrap(),
            )
            .unwrap();
        assert_eq!(direct, joined, "case {case}");
    }
}

/// Whatever the brute-force solver returns is accepted by the verifier, and
/// when it returns nothing the transfer-relation solvability check agrees.
#[test]
fn brute_force_solutions_verify() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let problem = random_problem(&mut rng, 2, 3);
        let n = rng.gen_range(3..20usize);
        let inputs: Vec<u16> = (0..n).map(|_| rng.gen_range(0..2u16)).collect();
        let topology = if rng.gen_range(0..2u16) == 1 {
            Topology::Cycle
        } else {
            Topology::Path
        };
        let instance = Instance::from_indices(topology, &inputs);
        let ts = TransferSystem::new(&problem);
        match problem.solve_brute_force(&instance) {
            Some(labeling) => {
                assert!(problem.is_valid(&instance, &labeling), "case {case}");
                assert!(ts.instance_solvable(&instance).unwrap(), "case {case}");
            }
            None => assert!(!ts.instance_solvable(&instance).unwrap(), "case {case}"),
        }
    }
}

/// Two words with the same type are interchangeable as gaps: for every pair of
/// boundary labels, the gap is completable through one word iff it is
/// completable through the other (the computational content of the paper's
/// Lemma 11).
#[test]
fn type_equal_words_complete_the_same_boundaries() {
    let mut checked = 0;
    for case in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let problem = random_problem(&mut rng, 2, 3);
        let u = random_word(&mut rng, 8, 2);
        let v = random_word(&mut rng, 8, 2);
        let ts = TransferSystem::new(&problem);
        let sg = TypeSemigroup::compute(&ts, 100_000).unwrap();
        if sg.type_of_word(&u).unwrap() != sg.type_of_word(&v).unwrap() {
            continue; // the property only quantifies over type-equal pairs
        }
        checked += 1;
        let cu = ts.connection_of_word(&u).unwrap();
        let cv = ts.connection_of_word(&v).unwrap();
        assert_eq!(cu, cv, "case {case}");
    }
    assert!(checked >= 8, "too few type-equal pairs sampled: {checked}");
}

/// Period / primitivity invariants used by the O(1) partition.
#[test]
fn periodicity_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let w = random_word(&mut rng, 12, 3);
        let p = smallest_period(&w);
        assert!(p >= 1 && p <= w.len(), "case {case}");
        for i in 0..w.len() - p {
            assert_eq!(w[i], w[i + p], "case {case}");
        }
        let root = primitive_root(&w);
        assert!(is_primitive(root), "case {case}");
        assert_eq!(w.len() % root.len(), 0, "case {case}");
    }
}

/// The §3.3 solver always returns a constraint-satisfying output, for
/// arbitrary (not just good) Π_{M_B} inputs.
#[test]
fn pi_mb_solver_is_total_and_sound() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let problem = PiMb::new(machines::unary_counter(), 4);
        let mut inputs = problem.good_input(Secret::A, 4).expect("halting machine");
        let corruptions = rng.gen_range(0..5usize);
        for _ in 0..corruptions {
            let pos = rng.gen_range(0..inputs.len());
            inputs[pos] = match rng.gen_range(0..6u16) {
                0 => PiInput::Separator,
                1 => PiInput::Empty,
                2 => PiInput::Start(Secret::B),
                3 => PiInput::Tape {
                    content: TapeSymbol::One,
                    state: StateId(0),
                    head: false,
                },
                4 => PiInput::Tape {
                    content: TapeSymbol::Zero,
                    state: StateId(1),
                    head: true,
                },
                _ => PiInput::Tape {
                    content: TapeSymbol::RightEnd,
                    state: StateId(2),
                    head: false,
                },
            };
        }
        let output = solve_pi_mb(&problem, &inputs);
        assert!(problem.is_valid(&inputs, &output), "case {case}");
    }
}

/// Merging output labels never makes a solvable instance unsolvable
/// (monotonicity used throughout the classifier's reasoning).
#[test]
fn merging_outputs_preserves_solvability() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + case);
        let n = rng.gen_range(3..12usize);
        let inputs: Vec<u16> = (0..n).map(|_| 0).collect();
        let strict = problems::coloring(3);
        let merged = lcl_paths::problem::relabel_outputs(&strict, &[0, 1, 1], &["1", "2"]).unwrap();
        let instance = Instance::from_indices(Topology::Cycle, &inputs);
        if let Some(labeling) = strict.solve_brute_force(&instance) {
            // Transport the labeling through the merge and check validity.
            let transported: Vec<u16> = labeling
                .outputs()
                .iter()
                .map(|o| if o.index() == 0 { 0 } else { 1 })
                .collect();
            let transported = lcl_paths::problem::Labeling::from_indices(&transported);
            assert!(merged.is_valid(&instance, &transported), "case {case}");
        }
    }
}

#[test]
fn out_label_ordering_is_consistent() {
    // Small sanity check used by the property tests above.
    assert!(OutLabel(0) < OutLabel(1));
    assert_eq!(InLabel(2).index(), 2);
}
