//! Randomized differential soak over the `lcl-gen` workload.
//!
//! Two independent implementations of the decision procedure are run over
//! ~500 seeded generated problems sweeping every [`Family`] (including
//! `unsolvable` and `near-threshold`, per the acceptance criteria):
//!
//! 1. the **memoized** path — [`Engine::classify`] through the sharded LRU
//!    cache, exactly as the server serves it, and
//! 2. the **naive semigroup** path — a fresh [`classify_with_options`] per
//!    problem, straight through the transfer-relation machinery with no
//!    cache in front,
//!
//! and every verdict is cross-checked against brute-force
//! [`TransferSystem`] solvability on sampled concrete instances. A second
//! test replays a slice of the corpus through the `generate` protocol kind
//! on both connection backends and asserts the wire transcripts are
//! byte-identical.

use std::collections::BTreeMap;
use std::sync::Arc;

use lcl_paths::classifier::{classify_with_options, ClassifierOptions, Complexity};
use lcl_paths::gen::{generate, Family, GenConfig};
use lcl_paths::problem::{Instance, Topology};
use lcl_paths::semigroup::TransferSystem;
use lcl_paths::Engine;
use lcl_server::{Backend, Client, Server, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded problems in the soak (the acceptance floor is 500).
const SOAK_PROBLEMS: usize = 500;

/// Random concrete instances sampled per solvable problem for the
/// brute-force solvability cross-check.
const WORDS_PER_PROBLEM: usize = 3;

/// The deterministic soak corpus: the config for slot `i`. Families rotate
/// fastest so every contiguous slice covers all four; alphabets and
/// densities sweep on longer strides so the corpus is not 125 copies of the
/// same shape.
fn soak_config(i: usize) -> GenConfig {
    let density = [35, 60, 85];
    GenConfig::new(i as u64)
        .family(Family::ALL[i % Family::ALL.len()])
        .input_labels(1 + (i / 4) % 3)
        .output_labels(1 + (i / 12) % 3)
        .node_density_pct(density[(i / 36) % 3])
        .edge_density_pct(density[(i / 108) % 3])
        .out_degree(1 + (i as u32 / 2) % 2)
}

fn backends() -> Vec<Backend> {
    [Backend::Reactor, Backend::Threads]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

/// The differential soak proper: memoized engine vs uncached semigroup
/// classification over the full corpus, with brute-force spot checks.
#[test]
fn soak_generated_problems_classify_identically_on_both_paths() {
    let engine = Engine::builder().parallelism(2).build();
    let options = ClassifierOptions::default();
    let mut words = StdRng::seed_from_u64(0xD1FF_50AC);
    let mut by_complexity: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut by_family: BTreeMap<&'static str, usize> = BTreeMap::new();

    for i in 0..SOAK_PROBLEMS {
        let config = soak_config(i);
        let name = config.problem_name();
        let problem = generate(&config).unwrap_or_else(|e| panic!("{name}: generate: {e}"));

        let memoized = engine
            .classify(&problem)
            .unwrap_or_else(|e| panic!("{name}: engine path: {e}"));
        let naive = classify_with_options(&problem, &options)
            .unwrap_or_else(|e| panic!("{name}: semigroup path: {e}"));
        assert_eq!(
            memoized.complexity(),
            naive.complexity(),
            "{name}: memoized and naive paths disagree on the class"
        );
        assert_eq!(
            memoized.num_types(),
            naive.num_types(),
            "{name}: type-semigroup sizes diverged"
        );
        assert_eq!(
            memoized.pump_threshold(),
            naive.pump_threshold(),
            "{name}: pumping thresholds diverged"
        );

        // Brute force keeps both implementations honest: an unsolvable
        // verdict must come with a witness the transfer system rejects, and
        // a solvable verdict means every sampled cycle admits a labeling.
        let ts = TransferSystem::new(&problem);
        if memoized.complexity() == Complexity::Unsolvable {
            let witness = memoized
                .unsolvability_witness()
                .unwrap_or_else(|| panic!("{name}: unsolvable verdict without a witness"));
            assert!(
                !ts.instance_solvable(witness).unwrap(),
                "{name}: claimed witness is solvable by brute force"
            );
        } else {
            // Complexity is asymptotic: solvability is only promised for
            // cycles of length ≥ the pumping threshold (a triangle cannot
            // be 2-colored without making 2-coloring "unsolvable"), so the
            // sampled instances start there.
            let floor = memoized.pump_threshold().max(1);
            for _ in 0..WORDS_PER_PROBLEM {
                let len = floor + words.gen_range(0..6usize);
                let word: Vec<u16> = (0..len)
                    .map(|_| words.gen_range(0..problem.num_inputs() as u16))
                    .collect();
                let instance = Instance::from_indices(Topology::Cycle, &word);
                assert!(
                    ts.instance_solvable(&instance).unwrap(),
                    "{name}: classified {} but the cycle {word:?} has no labeling",
                    memoized.complexity()
                );
            }
        }

        *by_complexity
            .entry(memoized.complexity().wire_name())
            .or_default() += 1;
        *by_family.entry(config.family.wire_name()).or_default() += 1;
    }

    // The acceptance criteria: the soak must have exercised at least one
    // problem of the unsolvable-by-construction family and a real share of
    // near-threshold ones — and actually produced unsolvable verdicts.
    assert!(
        by_family.get("unsolvable").copied().unwrap_or(0) >= SOAK_PROBLEMS / 8,
        "family coverage collapsed: {by_family:?}"
    );
    assert!(
        by_family.get("near-threshold").copied().unwrap_or(0) >= SOAK_PROBLEMS / 8,
        "family coverage collapsed: {by_family:?}"
    );
    assert!(
        by_complexity.get("unsolvable").copied().unwrap_or(0) >= 1,
        "no unsolvable verdict in the whole soak: {by_complexity:?}"
    );
    assert!(
        by_complexity.len() >= 3,
        "the corpus should straddle at least three classes: {by_complexity:?}"
    );
}

/// A slice of the soak corpus replayed through the `generate` protocol kind:
/// the wire problem must be byte-identical to local generation, its verdict
/// must match the in-process engine, and the transcripts must agree across
/// backends byte for byte.
#[test]
fn generate_over_the_wire_matches_local_generation_on_every_backend() {
    let reference = Engine::builder().parallelism(1).build();
    let mut per_backend: Vec<(Backend, Vec<String>)> = Vec::new();

    for backend in backends() {
        let service = Arc::new(Service::new(Engine::builder().parallelism(2).build()));
        let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0")
            .expect("bind loopback")
            .backend(backend)
            .start()
            .expect("start server");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let mut transcript = Vec::new();
        for i in (0..SOAK_PROBLEMS).step_by(16) {
            let config = soak_config(i);
            let (spec, hash) = client
                .generate(&config)
                .unwrap_or_else(|e| panic!("[{backend}] {}: {e}", config.problem_name()));
            let local = generate(&config).expect("local generation");
            assert_eq!(
                hash,
                format!("{:016x}", local.canonical_hash()),
                "[{backend}] {}: wire hash disagrees with local generation",
                config.problem_name()
            );
            assert_eq!(
                spec.to_json_string(),
                local.to_spec().to_json_string(),
                "[{backend}] {}: wire spec is not byte-identical",
                config.problem_name()
            );

            // The generated spec round-trips straight back into `classify`.
            let verdict = client
                .classify(&spec)
                .unwrap_or_else(|e| panic!("[{backend}] classify generated spec: {e}"));
            let expected = reference.verdict(&local).expect("in-process verdict");
            assert_eq!(
                verdict.complexity,
                expected.complexity,
                "[{backend}] {}: wire and in-process verdicts disagree",
                config.problem_name()
            );
            transcript.push(format!(
                "{} {hash} {}",
                config.problem_name(),
                verdict.complexity.wire_name()
            ));
        }
        drop(client);
        handle.shutdown();
        per_backend.push((backend, transcript));
    }

    if let [(first, first_lines), rest @ ..] = per_backend.as_slice() {
        for (other, other_lines) in rest {
            assert_eq!(
                first_lines, other_lines,
                "backends {first} and {other} must generate identically"
            );
        }
    }
}
