//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships a
//! minimal, dependency-free implementation of the exact `rand` API surface the
//! repository uses: [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is a
//! fixed xoshiro256++ seeded through SplitMix64, so seeded runs are
//! deterministic and portable — which is all the tests and benches rely on.
//! Swap this shim for the real crate by editing the workspace manifests; no
//! source changes are required.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` using the supplied 64-bit source.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128 - range.start as u128) as u64;
                // Unbiased rejection sampling (Lemire-style threshold).
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = rng.next_u64();
                    if r >= threshold {
                        return range.start + (r % span) as Self;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform!(u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = rng.next_u64();
                    if r >= threshold {
                        return ((range.start as i128) + (r % span) as i128) as Self;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_signed!(i32 => u32, i64 => u64, isize => usize);

/// The raw 64-bit entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Generates a random `bool` with probability 1/2.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..1u16);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn all_residues_are_hit() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
