//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` — the only
//! surface this workspace uses — on top of a `Mutex<VecDeque>` + `Condvar`
//! queue. Unlike `std::sync::mpsc`, both endpoints are cloneable, matching
//! crossbeam's multi-producer multi-consumer semantics that the actor
//! simulator relies on.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // disconnection. The notify must happen while holding the
                // queue lock — otherwise a receiver that has checked the
                // sender count but not yet parked would miss the wakeup and
                // block forever.
                let _guard = self
                    .inner
                    .queue
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty.
        /// Fails once the channel is empty and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        /// Dequeues the next message if one is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .pop_front()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn cross_thread_blocking_recv() {
            let (tx, rx) = unbounded();
            let handle = thread::spawn(move || rx.recv());
            tx.send(42u32).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(42));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<u8>();
            drop(rx2);
            assert_eq!(tx2.send(1), Err(SendError(1)));
        }

        #[test]
        fn cloned_endpoints_share_the_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(7).unwrap();
            assert_eq!(rx2.try_recv(), Some(7));
            assert_eq!(rx.try_recv(), None);
        }
    }
}
