//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the small slice of criterion's API the workspace's ablation
//! benches use — `Criterion`, benchmark groups, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros — with a plain
//! measure-and-print loop instead of criterion's statistical machinery. Good
//! enough to keep the bench binaries building, running and reporting a mean
//! time per iteration in an offline container.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away. Mirrors
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Controls how `iter_batched` amortises setup cost. The shim runs every
/// batch size identically.
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one function of the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            name,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, samples: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let started = Instant::now();
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    for _ in 0..samples {
        f(&mut bencher);
        if started.elapsed() > budget {
            break;
        }
    }
    let mean = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!(
        "  {name}: {mean:?}/iter over {} iterations",
        bencher.iterations
    );
}

/// Passed to each benchmark closure; accumulates timing.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let reps = 10;
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += reps;
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let reps = 10;
        for _ in 0..reps {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 10);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().sample_size(1);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
