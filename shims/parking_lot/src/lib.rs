//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API (the
//! only part of the crate this workspace uses). A poisoned std lock is
//! recovered transparently, matching `parking_lot`'s behaviour of not
//! propagating panics through locks.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader–writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
