//! The unified error type of the umbrella crate.
//!
//! Every subsystem crate ships its own error enum; this module folds them
//! into a single [`Error`] with `From` conversions, so application code can
//! use `?` across subsystem boundaries with one error type in its signatures.

use std::error::Error as StdError;
use std::fmt;

/// Any error produced by the `lcl-paths` workspace.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Error {
    /// Problem construction or wire-format error (`lcl-problem`).
    Problem(crate::problem::ProblemError),
    /// Type-semigroup error (`lcl-semigroup`).
    Semigroup(crate::semigroup::SemigroupError),
    /// LOCAL simulator error (`lcl-local-sim`).
    Sim(crate::sim::SimError),
    /// Linear-bounded-automaton error (`lcl-lba`).
    Lba(crate::lba::LbaError),
    /// Classifier or engine error (`lcl-classifier`).
    Classifier(crate::classifier::ClassifierError),
    /// Workload-generator error (`lcl-gen`).
    Gen(crate::gen::GenError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Problem(e) => write!(f, "problem: {e}"),
            Error::Semigroup(e) => write!(f, "semigroup: {e}"),
            Error::Sim(e) => write!(f, "simulator: {e}"),
            Error::Lba(e) => write!(f, "lba: {e}"),
            Error::Classifier(e) => write!(f, "classifier: {e}"),
            Error::Gen(e) => write!(f, "gen: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Problem(e) => Some(e),
            Error::Semigroup(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Lba(e) => Some(e),
            Error::Classifier(e) => Some(e),
            Error::Gen(e) => Some(e),
        }
    }
}

impl From<crate::problem::ProblemError> for Error {
    fn from(e: crate::problem::ProblemError) -> Self {
        Error::Problem(e)
    }
}

impl From<crate::semigroup::SemigroupError> for Error {
    fn from(e: crate::semigroup::SemigroupError) -> Self {
        Error::Semigroup(e)
    }
}

impl From<crate::sim::SimError> for Error {
    fn from(e: crate::sim::SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<crate::lba::LbaError> for Error {
    fn from(e: crate::lba::LbaError) -> Self {
        Error::Lba(e)
    }
}

impl From<crate::classifier::ClassifierError> for Error {
    fn from(e: crate::classifier::ClassifierError) -> Self {
        Error::Classifier(e)
    }
}

impl From<crate::gen::GenError> for Error {
    fn from(e: crate::gen::GenError) -> Self {
        Error::Gen(e)
    }
}

/// Convenience result alias using the unified [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    fn returns_unified() -> Result<crate::problem::NormalizedLcl> {
        // `?` converts both subsystem error types transparently.
        let mut b = crate::problem::NormalizedLcl::builder("p");
        b.input_labels(&["x"]);
        b.output_labels(&["o"]);
        b.allow_all_node_pairs();
        b.allow_all_edge_pairs();
        let problem = b.build()?;
        let _ = crate::classifier::classify(&problem)?;
        Ok(problem)
    }

    #[test]
    fn conversions_compose_with_question_mark() {
        assert!(returns_unified().is_ok());
    }

    #[test]
    fn display_prefixes_subsystem() {
        let e = Error::from(crate::problem::ProblemError::EmptyInputAlphabet);
        assert!(e.to_string().starts_with("problem: "));
        assert!(e.source().is_some());
        let e = Error::from(crate::sim::SimError::DuplicateIds);
        assert!(e.to_string().starts_with("simulator: "));
        let e = Error::from(crate::classifier::ClassifierError::SearchBudgetExceeded { budget: 1 });
        assert!(e.to_string().starts_with("classifier: "));
        let e = Error::from(crate::semigroup::SemigroupError::EmptyWord);
        assert!(e.to_string().starts_with("semigroup: "));
    }
}
