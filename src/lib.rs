//! # lcl-paths
//!
//! Umbrella crate for the reproduction of *"The distributed complexity of
//! locally checkable problems on paths is decidable"* (Balliu, Brandt, Chang,
//! Olivetti, Rabie, Suomela — PODC 2019).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them under stable module names so that examples, integration
//! tests and downstream users need a single dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`problem`] | `lcl-problem` | LCL problems, instances, verifiers, the JSON wire format ([`problem::ProblemSpec`]) |
//! | [`semigroup`] | `lcl-semigroup` | transfer relations, types, pumping |
//! | [`sim`] | `lcl-local-sim` | the LOCAL model simulators |
//! | [`algorithms`] | `lcl-algorithms` | Cole–Vishkin, MIS, ruling sets, partitions |
//! | [`lba`] | `lcl-lba` | linear bounded automata |
//! | [`hardness`] | `lcl-hardness` | the `Π_{M_B}` construction and §3 machinery |
//! | [`classifier`] | `lcl-classifier` | the decision procedure, synthesis (§4), and the [`Engine`] service API |
//! | [`gen`] | `lcl-gen` | seeded random LCL-problem generator (workload generation) |
//! | [`problems`] | `lcl-problems` | the problem corpus with ground truths |
//! | [`error`] | — | the unified [`Error`] type with `From` conversions from every subsystem |
//!
//! The service-facing surface — [`Engine`], [`EngineBuilder`],
//! [`classifier::Verdict`], [`problem::ProblemSpec`] and [`Error`] — is
//! additionally re-exported at the crate root.
//!
//! # Quick start: the engine
//!
//! [`Engine`] is the recommended entry point: it memoizes the expensive
//! type-semigroup work per problem structure, classifies batches in parallel
//! ([`Engine::classify_many`]), and can classify + synthesize + execute in
//! one call ([`Engine::solve`]).
//!
//! ```
//! use lcl_paths::{Engine, classifier::Complexity};
//! use lcl_paths::problem::{Instance, Topology};
//! use lcl_paths::problems;
//!
//! # fn main() -> Result<(), lcl_paths::Error> {
//! let engine = Engine::new();
//!
//! // Classify one problem; a second call is served from the memo cache.
//! let verdict = engine.classify(&problems::coloring(3))?;
//! assert_eq!(verdict.complexity(), Complexity::LogStar);
//!
//! // Classify the whole corpus in parallel, verdicts in input order.
//! let corpus: Vec<_> = problems::corpus().into_iter().map(|e| e.problem).collect();
//! let verdicts = engine.classify_many(&corpus);
//! assert_eq!(verdicts.len(), corpus.len());
//!
//! // Classify, synthesize the optimal LOCAL algorithm, and run it.
//! let instance = Instance::from_indices(Topology::Cycle, &[0; 50]);
//! let solution = engine.solve(&problems::coloring(3), &instance)?;
//! assert_eq!(solution.labeling().len(), 50);
//! # Ok(())
//! # }
//! ```
//!
//! # Legacy one-shot entry point
//!
//! The original free function [`classifier::classify`] still works — it is a
//! thin wrapper over a process-wide default engine:
//!
//! ```
//! use lcl_paths::classifier::{classify, Complexity};
//! use lcl_paths::problems;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let verdict = classify(&problems::coloring(3))?;
//! assert_eq!(verdict.complexity(), Complexity::LogStar);
//! # Ok(())
//! # }
//! ```
//!
//! # Wire format
//!
//! Problems and verdicts serialize to versioned JSON for service boundaries:
//!
//! ```
//! use lcl_paths::{Engine, problem::ProblemSpec};
//! use lcl_paths::problems;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = problems::coloring(3);
//! let payload = problem.to_json_string();                 // request body
//! let parsed = ProblemSpec::from_json_str(&payload)?.to_problem()?;
//! let verdict = Engine::new().verdict(&parsed)?;          // response body
//! assert!(verdict.to_json_string().contains("log-star"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;

pub use error::{Error, Result};
pub use lcl_algorithms as algorithms;
pub use lcl_classifier as classifier;
pub use lcl_classifier::{
    CacheStats, Computed, Engine, EngineBuilder, FlightOutcome, ShardStats, ShardedLruCache,
    Solution,
};
pub use lcl_gen as gen;
pub use lcl_hardness as hardness;
pub use lcl_lba as lba;
pub use lcl_local_sim as sim;
pub use lcl_problem as problem;
pub use lcl_problems as problems;
pub use lcl_semigroup as semigroup;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let p = crate::problems::copy_input();
        assert_eq!(p.num_outputs(), 2);
        assert_eq!(crate::sim::log_star(16), 3);
    }

    #[test]
    fn engine_reexports_are_wired() {
        let engine = crate::Engine::builder().parallelism(1).build();
        let stats: crate::CacheStats = engine.cache_stats();
        assert_eq!(stats.entries, 0);
    }
}
