//! # lcl-paths
//!
//! Umbrella crate for the reproduction of *"The distributed complexity of
//! locally checkable problems on paths is decidable"* (Balliu, Brandt, Chang,
//! Olivetti, Rabie, Suomela — PODC 2019).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them under stable module names so that examples, integration
//! tests and downstream users need a single dependency:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`problem`] | `lcl-problem` | LCL problems, instances, verifiers |
//! | [`semigroup`] | `lcl-semigroup` | transfer relations, types, pumping |
//! | [`sim`] | `lcl-local-sim` | the LOCAL model simulators |
//! | [`algorithms`] | `lcl-algorithms` | Cole–Vishkin, MIS, ruling sets, partitions |
//! | [`lba`] | `lcl-lba` | linear bounded automata |
//! | [`hardness`] | `lcl-hardness` | the `Π_{M_B}` construction and §3 machinery |
//! | [`classifier`] | `lcl-classifier` | the decision procedure and synthesis (§4) |
//! | [`problems`] | `lcl-problems` | the problem corpus with ground truths |
//!
//! # Quick start
//!
//! ```
//! use lcl_paths::classifier::{classify, Complexity};
//! use lcl_paths::problems;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let verdict = classify(&problems::coloring(3))?;
//! assert_eq!(verdict.complexity(), Complexity::LogStar);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lcl_algorithms as algorithms;
pub use lcl_classifier as classifier;
pub use lcl_hardness as hardness;
pub use lcl_lba as lba;
pub use lcl_local_sim as sim;
pub use lcl_problem as problem;
pub use lcl_problems as problems;
pub use lcl_semigroup as semigroup;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let p = crate::problems::copy_input();
        assert_eq!(p.num_outputs(), 2);
        assert_eq!(crate::sim::log_star(16), 3);
    }
}
